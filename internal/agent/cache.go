package agent

import (
	"math"
	"sync"
	"sync/atomic"
)

// CachedEvaluator wraps an Agent with an LRU cache over its inference
// results, so repeated evaluations of the same placement state — the
// MCTS root re-evaluated across restarts, the greedy-RL episode's
// states re-reached by the search, transpositions where different
// action orders produce the same occupancy map — skip the network
// entirely.
//
// Keying is content-addressed: the 128-bit key hashes ⟨t, the float64
// bit patterns of s_p and s_a⟩. An identical placement prefix always
// reproduces identical s_p/s_a bits (the environment is deterministic),
// so content keying subsumes keying by the action sequence — and it
// additionally unifies true transpositions, which a prefix hash would
// miss. Two distinct states collide only if two independent 64-bit
// hashes collide simultaneously (~2⁻¹²⁸ per pair; with the ≤10⁵ states
// of a search, negligible).
//
// A hit returns the stored Output. Probs is shared between the cache
// and every caller: it is read-only by the same contract as Forward's
// (the search and the greedy player only read it). Hits are
// bit-identical to misses — the cache stores exactly what EvalState
// returned, and EvalState is pinned bit-identical to Forward.
//
// Safe for concurrent use; the underlying evaluation runs outside the
// lock, so parallel cache misses do not serialize the network.
//
// The cache assumes frozen weights: it must be created after
// pre-training (or weight loading) and discarded if the agent trains
// again — core.Placer wires this.
type CachedEvaluator struct {
	ag *Agent

	mu   sync.Mutex
	m    map[cacheKey]int32
	ents []cacheEntry // intrusive LRU: index-linked, allocated once
	cap  int
	head int32 // most recently used, -1 when empty
	tail int32 // least recently used, -1 when empty

	// Lock-free statistics: every lookup increments exactly one of
	// hits/misses exactly once (intra-batch duplicates count as hits),
	// so hits+misses equals the number of lookups — a telemetry scrape
	// mid-run reads a consistent pair without taking mu.
	hits, misses, evictions atomic.Uint64
}

type cacheKey struct{ a, b uint64 }

type cacheEntry struct {
	key        cacheKey
	out        Output
	prev, next int32
}

// DefaultCacheSize is the entry capacity NewCachedEvaluator uses when
// the caller passes capacity <= 0. One entry holds one ζ²-float32
// Probs slice (1 KiB at ζ=16), so the default is a few MiB.
const DefaultCacheSize = 4096

// NewCachedEvaluator wraps ag with an LRU evaluation cache holding up
// to capacity entries (DefaultCacheSize when capacity <= 0).
func NewCachedEvaluator(ag *Agent, capacity int) *CachedEvaluator {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &CachedEvaluator{
		ag:   ag,
		m:    make(map[cacheKey]int32, capacity),
		ents: make([]cacheEntry, 0, capacity),
		cap:  capacity,
		head: -1,
		tail: -1,
	}
}

// stateKey hashes ⟨t, s_p bits, s_a bits⟩ with two structurally
// different 64-bit word hashes: FNV-1a over words, and an add-fold
// with splitmix64-style avalanching. Lengths and t are folded in so
// states of different shape never share a key.
func stateKey(t int, sp, sa []float64) cacheKey {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
		mixMul1   = 0xbf58476d1ce4e5b9
		mixMul2   = 0x94d049bb133111eb
	)
	h1 := uint64(fnvOffset)
	h2 := uint64(0x2545f4914f6cdd1d)
	mix := func(w uint64) {
		h1 = (h1 ^ w) * fnvPrime
		h2 += w + 0x9e3779b97f4a7c15
		h2 = (h2 ^ (h2 >> 30)) * mixMul1
		h2 = (h2 ^ (h2 >> 27)) * mixMul2
		h2 ^= h2 >> 31
	}
	mix(uint64(t))
	mix(uint64(len(sp))<<32 | uint64(len(sa)))
	for _, v := range sp {
		mix(math.Float64bits(v))
	}
	for _, v := range sa {
		mix(math.Float64bits(v))
	}
	return cacheKey{a: h1, b: h2}
}

// Forward implements the sequential half of mcts.Evaluator: a cache
// lookup, falling through to the pure EvalState path on a miss. Unlike
// Agent.Forward it records no backward caches (searches never call
// Backward).
func (c *CachedEvaluator) Forward(sp, sa []float64, t int) Output {
	key := stateKey(t, sp, sa)
	c.mu.Lock()
	if idx, ok := c.m[key]; ok {
		c.touch(idx)
		out := c.ents[idx].out
		c.mu.Unlock()
		c.hits.Add(1)
		obsCacheHits.Inc()
		return out
	}
	c.mu.Unlock()
	c.misses.Add(1)
	obsCacheMisses.Inc()

	out := c.ag.EvalState(sp, sa, t)
	c.mu.Lock()
	c.insert(key, out)
	c.mu.Unlock()
	return out
}

// EvaluateBatch implements the batched half of mcts.Evaluator.
func (c *CachedEvaluator) EvaluateBatch(in []BatchInput) []Output {
	if len(in) == 0 {
		return nil
	}
	out := make([]Output, len(in))
	c.EvaluateBatchInto(in, out)
	return out
}

// EvaluateBatchInto resolves each input against the cache and runs the
// network once over the misses only. Duplicate states inside one batch
// (parallel workers racing to the same leaf) are evaluated once.
func (c *CachedEvaluator) EvaluateBatchInto(in []BatchInput, out []Output) {
	if len(out) != len(in) {
		panic("agent: CachedEvaluator.EvaluateBatchInto length mismatch")
	}
	sc := c.getBatchScratch(len(in))
	defer c.putBatchScratch(sc)

	var hits, misses uint64
	c.mu.Lock()
	for i := range in {
		sc.keys[i] = stateKey(in[i].T, in[i].SP, in[i].SA)
		if idx, ok := c.m[sc.keys[i]]; ok {
			c.touch(idx)
			hits++
			out[i] = c.ents[idx].out
			continue
		}
		if first, dup := sc.seen[sc.keys[i]]; dup {
			// Intra-batch duplicate: the first occurrence's evaluation
			// will serve both. Counted as a hit — the network runs once.
			hits++
			sc.dups = append(sc.dups, [2]int32{int32(i), first})
			continue
		}
		misses++
		sc.seen[sc.keys[i]] = int32(i)
		sc.miss = append(sc.miss, int32(i))
		sc.sub = append(sc.sub, in[i])
	}
	c.mu.Unlock()
	c.hits.Add(hits)
	c.misses.Add(misses)
	obsCacheHits.Add(hits)
	obsCacheMisses.Add(misses)

	if len(sc.sub) > 0 {
		sc.subOut = sc.subOut[:len(sc.sub)]
		c.ag.EvaluateBatchInto(sc.sub, sc.subOut)
		c.mu.Lock()
		for j, i := range sc.miss {
			out[i] = sc.subOut[j]
			c.insert(sc.keys[i], sc.subOut[j])
		}
		c.mu.Unlock()
	}
	for _, d := range sc.dups {
		out[d[0]] = out[d[1]]
	}
}

// Stats returns the cumulative hit/miss counters. Lock-free: safe to
// call from a telemetry scrape while searches hammer the cache.
func (c *CachedEvaluator) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Evictions returns the cumulative count of LRU entries recycled at
// capacity.
func (c *CachedEvaluator) Evictions() uint64 { return c.evictions.Load() }

// Len returns the current number of cached entries.
func (c *CachedEvaluator) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// touch moves entry idx to the LRU head. Caller holds mu.
func (c *CachedEvaluator) touch(idx int32) {
	if c.head == idx {
		return
	}
	e := &c.ents[idx]
	if e.prev >= 0 {
		c.ents[e.prev].next = e.next
	}
	if e.next >= 0 {
		c.ents[e.next].prev = e.prev
	}
	if c.tail == idx {
		c.tail = e.prev
	}
	e.prev = -1
	e.next = c.head
	if c.head >= 0 {
		c.ents[c.head].prev = idx
	}
	c.head = idx
	if c.tail < 0 {
		c.tail = idx
	}
}

// insert adds (or refreshes) a cache entry, evicting the LRU tail at
// capacity. Caller holds mu.
func (c *CachedEvaluator) insert(key cacheKey, out Output) {
	if idx, ok := c.m[key]; ok {
		// A concurrent miss on the same state got here first; keep the
		// stored Output (bit-identical anyway) and refresh recency.
		c.touch(idx)
		return
	}
	var idx int32
	if len(c.ents) < c.cap {
		c.ents = append(c.ents, cacheEntry{})
		idx = int32(len(c.ents) - 1)
	} else {
		// Recycle the least recently used entry.
		c.evictions.Add(1)
		obsCacheEvictions.Inc()
		idx = c.tail
		e := &c.ents[idx]
		delete(c.m, e.key)
		c.tail = e.prev
		if c.tail >= 0 {
			c.ents[c.tail].next = -1
		} else {
			c.head = -1
		}
	}
	c.ents[idx] = cacheEntry{key: key, out: out, prev: -1, next: c.head}
	if c.head >= 0 {
		c.ents[c.head].prev = idx
	}
	c.head = idx
	if c.tail < 0 {
		c.tail = idx
	}
	c.m[key] = idx
}

// batchScratch carries the per-call buffers of EvaluateBatchInto.
type batchScratch struct {
	keys   []cacheKey
	miss   []int32
	dups   [][2]int32
	sub    []BatchInput
	subOut []Output
	seen   map[cacheKey]int32
}

var batchScratchPool = sync.Pool{New: func() any {
	return &batchScratch{seen: make(map[cacheKey]int32, 16)}
}}

func (c *CachedEvaluator) getBatchScratch(n int) *batchScratch {
	sc := batchScratchPool.Get().(*batchScratch)
	if cap(sc.keys) < n {
		sc.keys = make([]cacheKey, n)
		sc.subOut = make([]Output, n)
	}
	sc.keys = sc.keys[:n]
	sc.miss = sc.miss[:0]
	sc.dups = sc.dups[:0]
	sc.sub = sc.sub[:0]
	sc.subOut = sc.subOut[:0]
	for k := range sc.seen {
		delete(sc.seen, k)
	}
	return sc
}

func (c *CachedEvaluator) putBatchScratch(sc *batchScratch) {
	for i := range sc.sub {
		sc.sub[i] = BatchInput{} // drop references to caller state
	}
	batchScratchPool.Put(sc)
}
