package agent

import (
	"math"
	"sync"
	"testing"

	"macroplace/internal/rng"
)

func testStates(n, count int, seed int64) []BatchInput {
	r := rng.New(seed)
	ins := make([]BatchInput, count)
	for i := range ins {
		sp := make([]float64, n)
		sa := make([]float64, n)
		for j := range sp {
			sp[j] = r.Float64()
			sa[j] = r.Float64()
		}
		ins[i] = BatchInput{SP: sp, SA: sa, T: i % 7}
	}
	return ins
}

func requireSameOutput(t *testing.T, what string, got, want Output) {
	t.Helper()
	if math.Float32bits(got.Value) != math.Float32bits(want.Value) {
		t.Fatalf("%s: value %v != %v", what, got.Value, want.Value)
	}
	if len(got.Probs) != len(want.Probs) {
		t.Fatalf("%s: probs length %d != %d", what, len(got.Probs), len(want.Probs))
	}
	for i := range got.Probs {
		if math.Float32bits(got.Probs[i]) != math.Float32bits(want.Probs[i]) {
			t.Fatalf("%s: probs[%d] %v != %v", what, i, got.Probs[i], want.Probs[i])
		}
	}
}

// EvalState is the inference path the cache fills itself from; its
// contract is bit-identity with the training-path Forward.
func TestEvalStateBitIdenticalToForward(t *testing.T) {
	ag := New(Config{Zeta: 6, Channels: 8, ResBlocks: 2, MaxSteps: 9, Seed: 3})
	for _, in := range testStates(36, 5, 11) {
		want := ag.Forward(in.SP, in.SA, in.T)
		got := ag.EvalState(in.SP, in.SA, in.T)
		requireSameOutput(t, "EvalState vs Forward", got, want)
	}
}

// A cache hit must return bit-identical policy and value to the miss
// that populated it — and to the uncached Forward path.
func TestCacheHitBitIdenticalToMiss(t *testing.T) {
	ag := New(Config{Zeta: 6, Channels: 8, ResBlocks: 2, MaxSteps: 9, Seed: 4})
	ce := NewCachedEvaluator(ag, 64)
	states := testStates(36, 6, 12)
	miss := make([]Output, len(states))
	for i, in := range states {
		miss[i] = ce.Forward(in.SP, in.SA, in.T)
	}
	if h, m := ce.Stats(); h != 0 || m != uint64(len(states)) {
		t.Fatalf("cold cache: hits=%d misses=%d", h, m)
	}
	for i, in := range states {
		hit := ce.Forward(in.SP, in.SA, in.T)
		requireSameOutput(t, "hit vs miss", hit, miss[i])
		requireSameOutput(t, "hit vs uncached Forward", hit, ag.Forward(in.SP, in.SA, in.T))
	}
	if h, m := ce.Stats(); h != uint64(len(states)) || m != uint64(len(states)) {
		t.Fatalf("warm cache: hits=%d misses=%d", h, m)
	}
}

func TestCacheBatchMixedHitsAndDuplicates(t *testing.T) {
	ag := New(Config{Zeta: 6, Channels: 8, ResBlocks: 2, MaxSteps: 9, Seed: 5})
	ce := NewCachedEvaluator(ag, 64)
	states := testStates(36, 4, 13)
	// Prime the cache with state 0 via the sequential path.
	first := ce.Forward(states[0].SP, states[0].SA, states[0].T)

	// Batch: [cached, new, duplicate-of-new, new].
	batch := []BatchInput{states[0], states[1], states[1], states[2]}
	outs := ce.EvaluateBatch(batch)
	requireSameOutput(t, "batch cached element", outs[0], first)
	requireSameOutput(t, "batch duplicate element", outs[2], outs[1])
	requireSameOutput(t, "batch vs direct", outs[3], ag.EvalState(states[2].SP, states[2].SA, states[2].T))
	h, m := ce.Stats()
	if h != 2 || m != 3 { // hit: cached + intra-batch dup; miss: 0-cold, 1, 3
		t.Fatalf("hits=%d misses=%d, want 2/3", h, m)
	}
	// Same batch again: all hits, bit-identical.
	again := ce.EvaluateBatch(batch)
	for i := range again {
		requireSameOutput(t, "rebatch", again[i], outs[i])
	}
	if h2, _ := ce.Stats(); h2 != h+4 {
		t.Fatalf("rebatch hits=%d, want %d", h2, h+4)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	ag := New(Config{Zeta: 4, Channels: 4, ResBlocks: 1, MaxSteps: 9, Seed: 6})
	ce := NewCachedEvaluator(ag, 2)
	states := testStates(16, 3, 14)
	ce.Forward(states[0].SP, states[0].SA, states[0].T) // miss
	ce.Forward(states[1].SP, states[1].SA, states[1].T) // miss
	ce.Forward(states[0].SP, states[0].SA, states[0].T) // hit; 1 becomes LRU
	ce.Forward(states[2].SP, states[2].SA, states[2].T) // miss, evicts 1
	if n := ce.Len(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	ce.Forward(states[1].SP, states[1].SA, states[1].T) // must be a miss again
	h, m := ce.Stats()
	if h != 1 || m != 4 {
		t.Fatalf("hits=%d misses=%d, want 1/4", h, m)
	}
	// 0 was evicted by re-inserting 1; 2 must still be cached.
	ce.Forward(states[2].SP, states[2].SA, states[2].T)
	if h2, _ := ce.Stats(); h2 != 2 {
		t.Fatalf("expected state 2 to survive eviction")
	}
}

func TestCacheKeyDistinguishesStates(t *testing.T) {
	sp := []float64{0.25, 0.5}
	sa := []float64{1, 0}
	base := stateKey(0, 1, sp, sa)
	if k := stateKey(0, 2, sp, sa); k == base {
		t.Fatal("t not keyed")
	}
	if k := stateKey(0, 1, sa, sp); k == base {
		t.Fatal("sp/sa order not keyed")
	}
	sp2 := []float64{0.25, 0.5000000001}
	if k := stateKey(0, 1, sp2, sa); k == base {
		t.Fatal("sp content not keyed")
	}
	if k := stateKey(7, 1, sp, sa); k == base {
		t.Fatal("weight fingerprint not keyed")
	}
	if k := stateKey(0, 1, sp, sa); k != base {
		t.Fatal("stateKey not deterministic")
	}
}

// TestCacheNoCrossFingerprintHits is the ECO warm-store regression:
// one cache object persists across a retrain (Retarget swaps the agent
// underneath, as internal/eco does between jobs on the same design),
// and entries stored under the old weights must never serve as hits
// for the new ones — every post-retrain evaluation is a miss returning
// the new agent's output bit-exactly.
func TestCacheNoCrossFingerprintHits(t *testing.T) {
	cfg := Config{Zeta: 6, Channels: 8, ResBlocks: 2, MaxSteps: 9}
	cfg.Seed = 21
	agA := New(cfg)
	cfg.Seed = 22
	agB := New(cfg)
	if agA.Fingerprint() == agB.Fingerprint() {
		t.Fatal("differently seeded agents share a fingerprint")
	}

	ce := NewCachedEvaluator(agA, 64)
	if ce.Fingerprint() != agA.Fingerprint() {
		t.Fatal("cache did not capture the agent's fingerprint")
	}
	states := testStates(36, 5, 17)
	for _, in := range states {
		ce.Forward(in.SP, in.SA, in.T) // populate under A's weights
	}

	// "Retrain": the same cache object retargets to B.
	ce.Retarget(agB)
	if ce.Fingerprint() != agB.Fingerprint() {
		t.Fatal("Retarget did not re-capture the fingerprint")
	}
	for _, in := range states {
		got := ce.Forward(in.SP, in.SA, in.T)
		requireSameOutput(t, "post-retrain", got, agB.EvalState(in.SP, in.SA, in.T))
	}
	outs := ce.EvaluateBatch(states)
	for i, in := range states {
		requireSameOutput(t, "post-retrain batch", outs[i], agB.EvalState(in.SP, in.SA, in.T))
	}
	h, m := ce.Stats()
	// A-phase: 5 misses. B-phase Forward loop: 5 misses (zero
	// cross-fingerprint hits). B-phase batch: 5 hits on B's own entries.
	if h != 5 || m != 10 {
		t.Fatalf("hits=%d misses=%d, want 5/10 (a cross-fingerprint hit occurred)", h, m)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	ag := New(Config{Zeta: 4, Channels: 4, ResBlocks: 1, MaxSteps: 9, Seed: 7})
	ce := NewCachedEvaluator(ag, 8) // small: forces concurrent eviction
	states := testStates(16, 12, 15)
	want := make([]Output, len(states))
	for i, in := range states {
		want[i] = ag.EvalState(in.SP, in.SA, in.T)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				i := (w + rep) % len(states)
				got := ce.Forward(states[i].SP, states[i].SA, states[i].T)
				requireSameOutput(t, "concurrent", got, want[i])
				outs := ce.EvaluateBatch(states[i : i+1])
				requireSameOutput(t, "concurrent batch", outs[0], want[i])
			}
		}(w)
	}
	wg.Wait()
}
