package agent

import (
	"math"
	"testing"

	"macroplace/internal/nn"
)

// Accuracy gate for the opt-in int8 backend: quantized inference is
// only useful if the heads it feeds the search barely move. The gate
// compares the quantized agent against the float oracle on a spread of
// states and pins the maximum policy KL divergence and value MAE.
//
// The bounds are deliberately tight multiples of what the error model
// in nn/quant.go predicts for this network (observed on this
// architecture: max KL ~6e-4, value MAE ~2e-2); a kernel regression
// that loses even one effective bit of the int8 path blows through
// them.
const (
	int8MaxPolicyKL = 5e-3
	int8MaxValueMAE = 5e-2
)

func TestInt8BackendAccuracyGate(t *testing.T) {
	oracle := New(Config{Zeta: 8, Channels: 8, ResBlocks: 2, MaxSteps: 12, Seed: 41})
	quant := oracle.Clone()
	be, err := nn.NewBackend("int8")
	if err != nil {
		t.Fatal(err)
	}
	quant.SetBackend(be)

	cells := oracle.Cfg.Zeta * oracle.Cfg.Zeta
	in := batchStates(16, cells)
	want := oracle.EvaluateBatch(in)
	got := quant.EvaluateBatch(in)

	var maxKL, sumAbsV float64
	for b := range in {
		// KL(p_float ‖ p_int8) over the actions the float policy puts
		// mass on. The quantized probability is floored at 1e-12 so a
		// mass that collapsed to zero registers as a huge (failing) KL
		// rather than an Inf that would obscure the report.
		var kl float64
		for i, pf := range want[b].Probs {
			if pf <= 0 {
				continue
			}
			pq := math.Max(float64(got[b].Probs[i]), 1e-12)
			kl += float64(pf) * math.Log(float64(pf)/pq)
		}
		if kl > maxKL {
			maxKL = kl
		}
		sumAbsV += math.Abs(float64(want[b].Value - got[b].Value))
	}
	mae := sumAbsV / float64(len(in))
	t.Logf("int8 vs float oracle: max policy KL = %.3g, value MAE = %.3g", maxKL, mae)
	if math.IsNaN(maxKL) || maxKL > int8MaxPolicyKL {
		t.Fatalf("max policy KL %.3g exceeds gate %.3g", maxKL, int8MaxPolicyKL)
	}
	if math.IsNaN(mae) || mae > int8MaxValueMAE {
		t.Fatalf("value MAE %.3g exceeds gate %.3g", mae, int8MaxValueMAE)
	}
}
