// Package viz renders placements as SVG images: macros, cells, pads,
// the grid partition, and optionally a congestion heat overlay. The
// output needs no external tooling — any browser displays it — which
// makes placement pathologies (stacked macros, corner pileups,
// congestion hotspots) visible at a glance.
package viz

import (
	"fmt"
	"io"
	"sync"

	"macroplace/internal/atomicio"
	"macroplace/internal/metrics"
	"macroplace/internal/netlist"
)

// cmPool recycles congestion-overlay demand buffers across renders.
var cmPool = sync.Pool{New: func() any { return new(metrics.CongestionMap) }}

// Options controls the rendering.
type Options struct {
	// WidthPx is the image width in pixels (default 800; height
	// follows the region aspect ratio).
	WidthPx int
	// ShowCells draws standard cells (can be slow for 100k+ cells).
	ShowCells bool
	// ShowGrid overlays the ζ×ζ partition.
	ShowGrid bool
	// Zeta is the grid resolution for ShowGrid (default 16).
	Zeta int
	// Congestion overlays a RUDY heat map.
	Congestion bool
}

func (o Options) normalize() Options {
	if o.WidthPx <= 0 {
		o.WidthPx = 800
	}
	if o.Zeta <= 0 {
		o.Zeta = 16
	}
	return o
}

// WriteSVG renders the design to w.
func WriteSVG(w io.Writer, d *netlist.Design, opts Options) error {
	opts = opts.normalize()
	reg := d.Region
	if reg.W() <= 0 || reg.H() <= 0 {
		return fmt.Errorf("viz: empty region")
	}
	scale := float64(opts.WidthPx) / reg.W()
	heightPx := int(reg.H() * scale)

	// SVG y grows downward; flip placement y.
	tx := func(x float64) float64 { return (x - reg.Lx) * scale }
	ty := func(y float64) float64 { return float64(heightPx) - (y-reg.Ly)*scale }

	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.WidthPx, heightPx, opts.WidthPx, heightPx)
	p(`<rect width="%d" height="%d" fill="#fafafa" stroke="#333"/>`+"\n", opts.WidthPx, heightPx)

	if opts.Congestion {
		// Congestion overlays are re-rendered per experiment frame;
		// reuse one demand buffer across renders.
		cm := metrics.RUDYInto(cmPool.Get().(*metrics.CongestionMap), d, opts.Zeta*2)
		defer cmPool.Put(cm)
		max := cm.Max()
		if max > 0 {
			bw := reg.W() / float64(cm.Bins) * scale
			bh := reg.H() / float64(cm.Bins) * scale
			for by := 0; by < cm.Bins; by++ {
				for bx := 0; bx < cm.Bins; bx++ {
					v := cm.Demand[by*cm.Bins+bx] / max
					if v < 0.05 {
						continue
					}
					p(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="rgb(255,%d,%d)" fill-opacity="0.5"/>`+"\n",
						float64(bx)*bw, float64(heightPx)-float64(by+1)*bh, bw, bh,
						int(255*(1-v)), int(255*(1-v)))
				}
			}
		}
	}

	if opts.ShowGrid {
		step := reg.W() / float64(opts.Zeta) * scale
		for i := 1; i < opts.Zeta; i++ {
			p(`<line x1="%.1f" y1="0" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n",
				float64(i)*step, float64(i)*step, heightPx)
		}
		stepY := reg.H() / float64(opts.Zeta) * scale
		for i := 1; i < opts.Zeta; i++ {
			p(`<line x1="0" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
				float64(i)*stepY, opts.WidthPx, float64(i)*stepY)
		}
	}

	if opts.ShowCells {
		for i := range d.Nodes {
			n := &d.Nodes[i]
			if n.Kind != netlist.Cell {
				continue
			}
			p(`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="#9ecae1" fill-opacity="0.5"/>`+"\n",
				tx(n.X), ty(n.Y+n.H), n.W*scale, n.H*scale)
		}
	}

	for i := range d.Nodes {
		n := &d.Nodes[i]
		switch n.Kind {
		case netlist.Macro:
			fill := "#fd8d3c"
			if n.Fixed {
				fill = "#969696"
			}
			p(`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="#333" stroke-width="0.5"/>`+"\n",
				tx(n.X), ty(n.Y+n.H), n.W*scale, n.H*scale, fill)
			if n.W*scale > 30 {
				p(`<text x="%.2f" y="%.2f" font-size="9" fill="#000">%s</text>`+"\n",
					tx(n.X)+2, ty(n.Y+n.H)+10, n.Name)
			}
		case netlist.Pad:
			p(`<rect x="%.2f" y="%.2f" width="3" height="3" fill="#31a354"/>`+"\n",
				tx(n.X), ty(n.Y)-3)
		}
	}
	p("</svg>\n")
	return err
}

// SaveSVG renders the design into a file (atomically replaced).
func SaveSVG(path string, d *netlist.Design, opts Options) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return WriteSVG(w, d, opts)
	})
}
