package viz

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"macroplace/internal/gen"
	"macroplace/internal/geom"
	"macroplace/internal/netlist"
)

func vizDesign(t *testing.T) *netlist.Design {
	t.Helper()
	d, err := gen.IBM("ibm01", 0.01, 4)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWriteSVGBasics(t *testing.T) {
	d := vizDesign(t)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, d, Options{}); err != nil {
		t.Fatalf("WriteSVG: %v", err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(strings.TrimSpace(s), "</svg>") {
		t.Error("output is not a complete SVG document")
	}
	// One rect per movable macro at minimum.
	if got, want := strings.Count(s, `fill="#fd8d3c"`), len(d.MovableMacroIndices()); got != want {
		t.Errorf("macro rects = %d, want %d", got, want)
	}
}

func TestWriteSVGOptions(t *testing.T) {
	d := vizDesign(t)
	var plain, full bytes.Buffer
	if err := WriteSVG(&plain, d, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteSVG(&full, d, Options{ShowCells: true, ShowGrid: true, Congestion: true, Zeta: 8}); err != nil {
		t.Fatal(err)
	}
	if full.Len() <= plain.Len() {
		t.Error("cells/grid/congestion options should add elements")
	}
	if !strings.Contains(full.String(), "<line") {
		t.Error("grid lines missing")
	}
	if !strings.Contains(full.String(), "#9ecae1") {
		t.Error("cell rects missing")
	}
}

func TestWriteSVGEmptyRegion(t *testing.T) {
	d := &netlist.Design{Region: geom.Rect{}}
	if err := WriteSVG(&bytes.Buffer{}, d, Options{}); err == nil {
		t.Error("empty region should error")
	}
}

func TestSaveSVG(t *testing.T) {
	d := vizDesign(t)
	path := filepath.Join(t.TempDir(), "out.svg")
	if err := SaveSVG(path, d, Options{ShowGrid: true}); err != nil {
		t.Fatalf("SaveSVG: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || !strings.Contains(string(data), "<svg") {
		t.Error("saved file is not an SVG")
	}
}
