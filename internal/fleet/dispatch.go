package fleet

import (
	"sync"

	"macroplace/internal/serve"
)

// dispatchPool is the coordinator's serve.Pool: where the local
// Scheduler queues tasks for a fixed worker pool, the fleet has no
// local compute to ration — each admitted job gets its own goroutine
// that spends its life relaying to a remote worker. Admission control
// still applies: at most maxInflight jobs in flight, and a submit
// beyond that is refused with ErrQueueFull so the HTTP layer's
// 429 + Retry-After composes across the fleet exactly as it does for a
// single daemon.
type dispatchPool struct {
	sem chan struct{}

	mu       sync.Mutex
	draining bool
	tasks    sync.WaitGroup
}

func newDispatchPool(maxInflight int) *dispatchPool {
	if maxInflight < 1 {
		maxInflight = 1
	}
	return &dispatchPool{sem: make(chan struct{}, maxInflight)}
}

// Submit starts t on its own goroutine if an inflight slot is free.
func (p *dispatchPool) Submit(t serve.Task) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return serve.ErrDraining
	}
	select {
	case p.sem <- struct{}{}:
	default:
		return serve.ErrQueueFull
	}
	p.tasks.Add(1)
	obsInflight.Add(1)
	go func() {
		defer func() {
			<-p.sem
			obsInflight.Add(-1)
			p.tasks.Done()
			if v := recover(); v != nil && t.OnPanic != nil {
				t.OnPanic(v)
			}
		}()
		t.Run()
	}()
	return nil
}

// QueueLen is always 0: dispatch never queues, it admits or refuses.
func (p *dispatchPool) QueueLen() int { return 0 }

// Wait blocks until every admitted task has finished.
func (p *dispatchPool) Wait() { p.tasks.Wait() }

// Drain stops admission and waits for in-flight tasks to finish.
func (p *dispatchPool) Drain() {
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
	p.tasks.Wait()
}
