package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestBackoffSchedulePinned pins the jittered schedule under a fixed
// seed: the exact delays are reproducible, every delay sits inside its
// jitter band, and the cap holds. If the jitter math changes, this
// test names the new schedule rather than silently shifting retry
// behaviour across the fleet.
func TestBackoffSchedulePinned(t *testing.T) {
	b := NewBackoff(42)
	got := make([]time.Duration, 6)
	for k := range got {
		got[k] = b.Delay(k)
	}
	// Nominal (pre-jitter) delays: 100ms, 200ms, 400ms, 800ms, 1.6s,
	// 3.2s; jitter is ±20%.
	nominal := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 3200 * time.Millisecond,
	}
	for k, d := range got {
		lo := time.Duration(float64(nominal[k]) * 0.8)
		hi := time.Duration(float64(nominal[k]) * 1.2)
		if d < lo || d > hi {
			t.Errorf("Delay(%d) = %v outside jitter band [%v, %v]", k, d, lo, hi)
		}
	}
	// Reproducibility: the same seed replays the same schedule.
	b2 := NewBackoff(42)
	for k := range got {
		if d := b2.Delay(k); d != got[k] {
			t.Errorf("seed 42 replay: Delay(%d) = %v, want %v", k, d, got[k])
		}
	}
	// And a different seed draws a different one (vanishingly unlikely
	// to collide across all six draws).
	b3 := NewBackoff(43)
	same := true
	for k := range got {
		if b3.Delay(k) != got[k] {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical schedules")
	}
}

func TestBackoffCap(t *testing.T) {
	b := &Backoff{Base: time.Second, Max: 4 * time.Second, Factor: 2}
	if d := b.Delay(10); d != 4*time.Second {
		t.Fatalf("Delay(10) = %v, want the 4s cap", d)
	}
}

// TestRetryBudgetExhaustion pins the joined-error contract: when every
// attempt fails, the returned error names every attempt (worker label
// + attempt number), so an operator reads the full story, not just the
// last failure.
func TestRetryBudgetExhaustion(t *testing.T) {
	b := &Backoff{Base: time.Microsecond, Max: time.Microsecond, Factor: 1}
	calls := 0
	err := Retry(context.Background(), 3, 0, b, "submit to http://w1", func(ctx context.Context) error {
		calls++
		return fmt.Errorf("boom %d", calls)
	})
	if err == nil {
		t.Fatal("want error after exhausted budget")
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
	for k := 1; k <= 3; k++ {
		want := fmt.Sprintf("submit to http://w1 attempt %d/3: boom %d", k, k)
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q:\n%v", want, err)
		}
	}
}

func TestRetryPermanentStopsEarly(t *testing.T) {
	b := &Backoff{Base: time.Microsecond, Max: time.Microsecond, Factor: 1}
	calls := 0
	err := Retry(context.Background(), 5, 0, b, "x", func(ctx context.Context) error {
		calls++
		return Permanent(errors.New("400 bad spec"))
	})
	if err == nil || calls != 1 {
		t.Fatalf("permanent error retried: calls=%d err=%v", calls, err)
	}
}

func TestRetrySucceedsAfterTransients(t *testing.T) {
	b := &Backoff{Base: time.Microsecond, Max: time.Microsecond, Factor: 1}
	calls := 0
	err := Retry(context.Background(), 4, 0, b, "x", func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("calls=%d err=%v, want success on 3rd", calls, err)
	}
}

func TestRetryHonorsAttemptTimeout(t *testing.T) {
	b := &Backoff{Base: time.Microsecond, Max: time.Microsecond, Factor: 1}
	var deadlines int
	err := Retry(context.Background(), 2, 10*time.Millisecond, b, "x", func(ctx context.Context) error {
		<-ctx.Done()
		deadlines++
		return ctx.Err()
	})
	if err == nil || deadlines != 2 {
		t.Fatalf("per-attempt timeout not applied: deadlines=%d err=%v", deadlines, err)
	}
}
