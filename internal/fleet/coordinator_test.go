package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"macroplace/internal/faults"
	"macroplace/internal/serve"
)

// fleetSpec is sized for the single-core CI container but with enough
// macro groups (6 at scale 0.03) that a scripted mid-search death
// leaves real work to migrate.
func fleetSpec(seed int64) serve.Spec {
	return serve.Spec{
		Bench: "ibm01", Scale: 0.03, Zeta: 8,
		Episodes: 4, Gamma: 8, Workers: 1,
		Channels: 4, ResBlocks: 1, Seed: seed,
		FreshRoot: true,
	}
}

// testWorker is one in-process placed worker: a real serve.Server on a
// real socket, optionally behind a fault-injection middleware, with a
// heartbeater pointed at the coordinator.
type testWorker struct {
	t       *testing.T
	srv     *serve.Server
	httpSrv *http.Server
	ln      net.Listener
	url     string

	hbCancel context.CancelFunc
	hbDone   chan struct{}

	killOnce sync.Once
}

func startWorker(t *testing.T, coordBase string, inj *faults.FleetInjector,
	runner func(context.Context, *serve.Job) (*serve.Result, error)) *testWorker {
	t.Helper()
	srv, err := serve.NewServer(serve.Config{Workers: 1, QueueCap: 4, Dir: t.TempDir(), Runner: runner, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var h http.Handler = srv.Handler()
	if inj != nil {
		h = inj.Middleware(h)
	}
	w := &testWorker{
		t:       t,
		srv:     srv,
		httpSrv: &http.Server{Handler: h},
		ln:      ln,
		url:     "http://" + ln.Addr().String(),
		hbDone:  make(chan struct{}),
	}
	go func() { _ = w.httpSrv.Serve(ln) }()

	hbCtx, cancel := context.WithCancel(context.Background())
	w.hbCancel = cancel
	hb := &Heartbeater{
		Coordinator: coordBase,
		Self:        w.url,
		Every:       50 * time.Millisecond,
		Load:        srv.LoadInfo,
	}
	if inj != nil {
		hb.Gate = inj.BeatAllowed
	}
	go func() { defer close(w.hbDone); hb.Run(hbCtx) }()

	t.Cleanup(func() {
		w.kill()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("worker %s shutdown: %v", w.url, err)
		}
	})
	return w
}

// kill emulates a SIGKILL as observed from the network: the listener
// and every live connection (the coordinator's SSE relay included)
// drop, and the heartbeats stop. The in-process flow goroutine cannot
// be killed — cleanup drains it — but nothing reaches it from outside.
func (w *testWorker) kill() {
	w.killOnce.Do(func() {
		w.hbCancel()
		<-w.hbDone
		_ = w.httpSrv.Close()
	})
}

// commitWatchingRunner wraps serve.RunSpec, feeding every progress
// event of the worker's own job into the injector's commit counter so
// the scripted death lands at an exact commit.
func commitWatchingRunner(inj *faults.FleetInjector) func(context.Context, *serve.Job) (*serve.Result, error) {
	return func(ctx context.Context, j *serve.Job) (*serve.Result, error) {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			seen := 0
			for {
				evs, more := j.EventsSince(seen)
				seen += len(evs)
				for _, ev := range evs {
					if ev.Type == "progress" {
						inj.CommitObserved()
					}
				}
				if more == nil {
					return
				}
				select {
				case <-more:
				case <-stop:
					return
				}
			}
		}()
		return serve.RunSpec(ctx, j)
	}
}

func startCoordinator(t *testing.T, cfg Config) (*Coordinator, string) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := c.Shutdown(ctx); err != nil {
			t.Errorf("coordinator shutdown: %v", err)
		}
	})
	return c, "http://" + addr
}

// healthyWorkers counts workers the coordinator currently lists as
// healthy (shared by the tests and the benchmark).
func healthyWorkers(base string) int {
	resp, err := http.Get(base + "/fleet/v1/workers")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var infos []WorkerInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return 0
	}
	healthy := 0
	for _, wi := range infos {
		if wi.State == StateHealthy {
			healthy++
		}
	}
	return healthy
}

func waitWorkers(t *testing.T, base string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if healthyWorkers(base) >= n {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("coordinator never reported %d healthy workers", n)
}

func submitSpec(t *testing.T, base string, sp serve.Spec) serve.Status {
	t.Helper()
	body, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, msg)
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// streamAll consumes the job's SSE stream on its own goroutine from
// submission to terminal, returning the collected events — the single
// continuous client stream the migration must keep alive.
func streamAll(t *testing.T, base, id string) func() []serve.Event {
	t.Helper()
	var mu sync.Mutex
	var events []serve.Event
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
		if err != nil {
			t.Errorf("stream: %v", err)
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev serve.Event
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
				t.Errorf("stream decode: %v", err)
				return
			}
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}
	}()
	return func() []serve.Event {
		select {
		case <-done:
		case <-time.After(2 * time.Minute):
			t.Fatal("event stream never completed")
		}
		mu.Lock()
		defer mu.Unlock()
		return events
	}
}

func waitJobDone(t *testing.T, base, id string) serve.Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st serve.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("job never terminal")
	return serve.Status{}
}

// directResult runs the spec on a plain (non-fleet) daemon and returns
// the uninterrupted reference result.
func directResult(t *testing.T, sp serve.Spec) *serve.Result {
	t.Helper()
	d, err := serve.NewServer(serve.Config{Workers: 1, QueueCap: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := d.Shutdown(ctx); err != nil {
			t.Errorf("direct daemon shutdown: %v", err)
		}
	}()
	j, err := d.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := j.WaitTerminal(ctx)
	if err != nil || st != serve.StateDone {
		t.Fatalf("direct run ended %s (%v)", st, err)
	}
	return j.Result()
}

func hasEvent(events []serve.Event, typ, substr string) bool {
	for _, ev := range events {
		if ev.Type == typ && strings.Contains(ev.Data, substr) {
			return true
		}
	}
	return false
}

// TestFleetMigrationE2E is the acceptance scenario: two workers behind
// a coordinator, deterministic fault injection kills the assigned
// worker mid-search (after 2 of 6 commits, once the coordinator has
// mirrored a checkpoint), and the job must finish on the second worker
// by resuming from the fetched checkpoint — while the client watches
// one continuous SSE stream and the final placement is bit-identical
// to an uninterrupted direct run.
func TestFleetMigrationE2E(t *testing.T) {
	spec := fleetSpec(11)
	direct := directResult(t, spec)

	_, base := startCoordinator(t, Config{
		// Generous beat thresholds: death detection in this test flows
		// from the broken relay + failed probe, not sweep timing.
		SuspectAfter: 30 * time.Second,
		DeadAfter:    60 * time.Second,
		RPCTimeout:   5 * time.Second,
		RetryBudget:  2,
	})

	inj := &faults.FleetInjector{DieAtCommit: 2, MinCheckpointFetches: 1}
	w1 := startWorker(t, base, inj, commitWatchingRunner(inj))
	inj.OnDie = w1.kill
	waitWorkers(t, base, 1)
	w2 := startWorker(t, base, nil, nil)
	waitWorkers(t, base, 2)

	st := submitSpec(t, base, spec)
	collect := streamAll(t, base, st.ID)
	final := waitJobDone(t, base, st.ID)

	if final.State != serve.StateDone {
		t.Fatalf("job ended %s (error: %s)", final.State, final.Error)
	}
	if !inj.Died() {
		t.Fatal("scripted death never fired — the test exercised nothing")
	}
	res := final.Result
	if res == nil {
		t.Fatal("done without result")
	}
	if res.Migrations != 1 {
		t.Errorf("migrations = %d, want 1", res.Migrations)
	}
	if res.Worker != w2.url {
		t.Errorf("result worker = %q, want the second worker %q", res.Worker, w2.url)
	}

	events := collect()
	if !hasEvent(events, "fleet", "assigned to worker "+w1.url) {
		t.Error("stream missing assignment to worker 1")
	}
	if !hasEvent(events, "fleet", "migrating with checkpoint") {
		t.Error("stream missing the checkpoint migration event")
	}
	if !hasEvent(events, "fleet", "assigned to worker "+w2.url) {
		t.Error("stream missing re-assignment to worker 2")
	}
	if !hasEvent(events, "stage", "resuming search from checkpoint") {
		t.Error("stream missing worker 2's resume stage event")
	}
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Errorf("event %d has seq %d — client stream not dense", i, ev.Seq)
			break
		}
	}

	// The acceptance bar: bit-identical to the uninterrupted run.
	if res.HPWL != direct.HPWL {
		t.Errorf("migrated HPWL %v != direct %v", res.HPWL, direct.HPWL)
	}
	if res.RLHPWL != direct.RLHPWL {
		t.Errorf("migrated RL HPWL %v != direct %v", res.RLHPWL, direct.RLHPWL)
	}
	if res.Explorations != direct.Explorations {
		t.Errorf("migrated explorations %d != direct %d", res.Explorations, direct.Explorations)
	}
	if len(res.Anchors) != len(direct.Anchors) {
		t.Fatalf("anchor count %d != %d", len(res.Anchors), len(direct.Anchors))
	}
	for i := range res.Anchors {
		if res.Anchors[i] != direct.Anchors[i] {
			t.Fatalf("anchor %d: migrated %d != direct %d", i, res.Anchors[i], direct.Anchors[i])
		}
	}
}

// TestFleetMigrationCorruptCheckpoint is the companion fallback: every
// checkpoint the coordinator fetches arrives bit-flipped, so the
// migration must restart from scratch — and still land the identical
// final placement, because FreshRoot makes the job a pure function of
// the spec.
func TestFleetMigrationCorruptCheckpoint(t *testing.T) {
	spec := fleetSpec(13)
	direct := directResult(t, spec)

	_, base := startCoordinator(t, Config{
		SuspectAfter: 30 * time.Second,
		DeadAfter:    60 * time.Second,
		RPCTimeout:   5 * time.Second,
		RetryBudget:  2,
	})

	inj := &faults.FleetInjector{DieAtCommit: 2, MinCheckpointFetches: 1, CorruptCheckpoints: true}
	w1 := startWorker(t, base, inj, commitWatchingRunner(inj))
	inj.OnDie = w1.kill
	waitWorkers(t, base, 1)
	w2 := startWorker(t, base, nil, nil)
	waitWorkers(t, base, 2)

	st := submitSpec(t, base, spec)
	collect := streamAll(t, base, st.ID)
	final := waitJobDone(t, base, st.ID)

	if final.State != serve.StateDone {
		t.Fatalf("job ended %s (error: %s)", final.State, final.Error)
	}
	res := final.Result
	if res == nil || res.Migrations != 1 {
		t.Fatalf("result %+v, want 1 migration", res)
	}
	if res.Worker != w2.url {
		t.Errorf("result worker = %q, want %q", res.Worker, w2.url)
	}
	events := collect()
	if !hasEvent(events, "fleet", "restarting from scratch") {
		t.Error("stream missing the restart-from-scratch fallback event")
	}
	if hasEvent(events, "fleet", "migrating with checkpoint") {
		t.Error("corrupt checkpoints must not be migrated with")
	}
	if res.HPWL != direct.HPWL || res.Explorations != direct.Explorations {
		t.Errorf("restarted run (hpwl=%v expl=%d) != direct (hpwl=%v expl=%d)",
			res.HPWL, res.Explorations, direct.HPWL, direct.Explorations)
	}
}

// TestFleetLocalFallback: zero live workers — the coordinator runs the
// job in-process and says so in the stream.
func TestFleetLocalFallback(t *testing.T) {
	_, base := startCoordinator(t, Config{RPCTimeout: 2 * time.Second})
	sp := serve.Spec{
		Bench: "ibm01", Scale: 0.01, Zeta: 8,
		Episodes: 4, Gamma: 2, Workers: 1,
		Channels: 4, ResBlocks: 1, Seed: 3,
	}
	st := submitSpec(t, base, sp)
	collect := streamAll(t, base, st.ID)
	final := waitJobDone(t, base, st.ID)
	if final.State != serve.StateDone {
		t.Fatalf("job ended %s (error: %s)", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Worker != "local" {
		t.Fatalf("result %+v, want Worker=local", final.Result)
	}
	if !hasEvent(collect(), "fleet", "no live workers") {
		t.Error("stream missing the local-fallback event")
	}
}

// TestFleetRetriesTransient5xx: the worker's first responses fail with
// 503; the submit must ride it out on retry/backoff and the job must
// complete on that worker without migrating.
func TestFleetRetriesTransient5xx(t *testing.T) {
	_, base := startCoordinator(t, Config{
		SuspectAfter: 30 * time.Second,
		DeadAfter:    60 * time.Second,
		RPCTimeout:   5 * time.Second,
		RetryBudget:  3,
	})
	inj := &faults.FleetInjector{Fail5xxFirst: 2}
	w1 := startWorker(t, base, inj, nil)
	waitWorkers(t, base, 1)

	sp := serve.Spec{
		Bench: "ibm01", Scale: 0.01, Zeta: 8,
		Episodes: 4, Gamma: 2, Workers: 1,
		Channels: 4, ResBlocks: 1, Seed: 5,
	}
	st := submitSpec(t, base, sp)
	final := waitJobDone(t, base, st.ID)
	if final.State != serve.StateDone {
		t.Fatalf("job ended %s (error: %s)", final.State, final.Error)
	}
	if final.Result.Worker != w1.url || final.Result.Migrations != 0 {
		t.Fatalf("result worker=%q migrations=%d, want %q/0", final.Result.Worker, final.Result.Migrations, w1.url)
	}
}

// TestFleetAdmissionControl: MaxInflight bounds the fleet the same way
// QueueCap bounds a single daemon — 429 + Retry-After, composing
// across the layers.
func TestFleetAdmissionControl(t *testing.T) {
	_, base := startCoordinator(t, Config{MaxInflight: 1, RetryAfter: 2 * time.Second})
	release := make(chan struct{})
	var once sync.Once
	t.Cleanup(func() { once.Do(func() { close(release) }) })
	startWorker(t, base, nil, func(ctx context.Context, j *serve.Job) (*serve.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		if err := os.MkdirAll(j.Dir, 0o755); err != nil {
			return nil, err
		}
		return &serve.Result{Design: "stub"}, nil
	})
	waitWorkers(t, base, 1)

	sp := serve.Spec{Bench: "ibm01", Scale: 0.01, Zeta: 8, Episodes: 4, Gamma: 2, Workers: 1, Channels: 4, ResBlocks: 1, Seed: 9}
	submitSpec(t, base, sp)

	body, _ := json.Marshal(sp)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	once.Do(func() { close(release) })
}

// TestFleetHeartbeatEndpoint pins the beat API's validation.
func TestFleetHeartbeatEndpoint(t *testing.T) {
	_, base := startCoordinator(t, Config{})
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"url":"http://127.0.0.1:1","running":1,"queued":2}`, 200},
		{`{"url":"ftp://nope"}`, 400},
		{`{"url":""}`, 400},
		{`{"url":"http://x","bogus":1}`, 400},
		{`not json`, 400},
	} {
		resp, err := http.Post(base+"/fleet/v1/heartbeat", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("beat %q: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
	resp, err := http.Get(base + "/fleet/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	var infos []WorkerInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].URL != "http://127.0.0.1:1" || infos[0].State != StateHealthy {
		t.Fatalf("workers = %+v, want the one beaten worker healthy", infos)
	}
}
