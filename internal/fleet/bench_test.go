package fleet

import (
	"context"
	"os"
	"testing"
	"time"

	"macroplace/internal/serve"
)

// BenchmarkFleetThroughput measures coordinator overhead per job —
// submit → route to a worker → relay the stream → collect the result —
// with stub runners so the placement itself costs nothing. This is the
// control-plane cost a fleet adds over a bare daemon, gated by
// scripts/benchgate.sh.
func BenchmarkFleetThroughput(b *testing.B) {
	c, err := New(Config{
		Dir:          b.TempDir(),
		MaxInflight:  4,
		SuspectAfter: time.Minute,
		DeadAfter:    2 * time.Minute,
		RPCTimeout:   10 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	addr, err := c.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	base := "http://" + addr
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := c.Shutdown(ctx); err != nil {
			b.Errorf("coordinator shutdown: %v", err)
		}
	}()

	stub := func(ctx context.Context, j *serve.Job) (*serve.Result, error) {
		j.AppendEvent("progress", "1/1 groups committed")
		if err := os.MkdirAll(j.Dir, 0o755); err != nil {
			return nil, err
		}
		return &serve.Result{Design: j.Spec.Bench, HPWL: 1}, nil
	}
	for i := 0; i < 2; i++ {
		srv, hbStop := startBenchWorker(b, base, stub)
		defer func() {
			hbStop()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
	}
	waitWorkersBench(b, base, 2)

	sp := serve.Spec{Bench: "ibm01", Scale: 0.01, Zeta: 8, Episodes: 1, Gamma: 1, Workers: 1, Channels: 4, ResBlocks: 1, Seed: 1}
	// Warm the coordinator↔worker connection pools and the relay path
	// before the timer, so a 1-iteration gate run measures the same
	// steady state a long run does.
	for i := 0; i < 2; i++ {
		j, err := c.Server().Submit(sp)
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		st, err := j.WaitTerminal(ctx)
		cancel()
		if err != nil || st != serve.StateDone {
			b.Fatalf("warmup job %s ended %s (%v)", j.ID, st, err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := c.Server().Submit(sp)
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		st, err := j.WaitTerminal(ctx)
		cancel()
		if err != nil || st != serve.StateDone {
			b.Fatalf("job %s ended %s (%v)", j.ID, st, err)
		}
	}
	// The deferred worker/coordinator shutdowns drain politely; keep
	// that teardown out of the per-job figure.
	b.StopTimer()
}

func startBenchWorker(b *testing.B, coordBase string,
	runner func(context.Context, *serve.Job) (*serve.Result, error)) (*serve.Server, func()) {
	b.Helper()
	srv, err := serve.NewServer(serve.Config{Workers: 4, QueueCap: 16, Dir: b.TempDir(), Runner: runner})
	if err != nil {
		b.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	hbCtx, hbCancel := context.WithCancel(context.Background())
	hbDone := make(chan struct{})
	hb := &Heartbeater{
		Coordinator: coordBase,
		Self:        "http://" + addr,
		Every:       100 * time.Millisecond,
		Load:        srv.LoadInfo,
	}
	go func() { defer close(hbDone); hb.Run(hbCtx) }()
	return srv, func() { hbCancel(); <-hbDone }
}

func waitWorkersBench(b *testing.B, base string, n int) {
	b.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if healthyWorkers(base) >= n {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	b.Fatalf("coordinator never reported %d healthy workers", n)
}
