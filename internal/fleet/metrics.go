package fleet

import (
	"time"

	"macroplace/internal/obs"
)

// Fleet telemetry, registered on the Default registry so the
// coordinator's /metrics endpoint exposes routing health next to the
// search counters. The live-worker and heartbeat-lag series are
// callback gauges bound per coordinator (latest wins), since their
// truth lives in the worker registry.
var (
	obsJobsRouted = obs.NewCounter("macroplace_fleet_jobs_routed_total",
		"Jobs dispatched to a remote worker (each migration re-dispatch counts).")
	obsMigrations = obs.NewCounter("macroplace_fleet_migrations_total",
		"Jobs migrated off a dead or draining worker.")
	obsResumeFallbacks = obs.NewCounter("macroplace_fleet_resume_fallbacks_total",
		"Migrations that restarted from scratch because the checkpoint was missing or corrupt.")
	obsRetries = obs.NewCounter("macroplace_fleet_retries_total",
		"Worker RPC retries after transient failures.")
	obsLocalRuns = obs.NewCounter("macroplace_fleet_local_runs_total",
		"Jobs run in-process on the coordinator because no live worker was available.")
	obsBeats = obs.NewCounter("macroplace_fleet_heartbeats_total",
		"Worker heartbeats received.")
	obsInflight = obs.NewGauge("macroplace_fleet_jobs_inflight",
		"Fleet jobs currently admitted and in flight.")
)

// bindGauges points the per-coordinator callback gauges at this
// coordinator's registry (a re-created coordinator rebinds them).
func bindGauges(reg *registry, now func() time.Time) {
	obs.NewGaugeFunc("macroplace_fleet_workers_live",
		"Workers currently in the healthy state.",
		func() float64 { return float64(reg.live()) })
	obs.NewGaugeFunc("macroplace_fleet_heartbeat_lag_seconds",
		"Age of the oldest live worker heartbeat.",
		func() float64 { return reg.maxLag(now()).Seconds() })
}
