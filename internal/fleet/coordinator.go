package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"macroplace/internal/atomicio"
	"macroplace/internal/mcts"
	"macroplace/internal/serve"
)

// errNoWorkers reports a routing attempt with zero live workers while
// local fallback is disabled.
var errNoWorkers = errors.New("fleet: no live workers")

// Config tunes a Coordinator. The zero value is usable: 16 jobs in
// flight, 3s/10s suspect/dead thresholds, 10s RPC timeout with a
// 3-attempt budget, up to 3 migrations per job, and local fallback on.
type Config struct {
	// Dir is the root of per-job working directories (mirrored
	// checkpoints and results land here), as serve.Config.Dir.
	Dir string
	// MaxInflight bounds concurrently routed jobs; a submit beyond it
	// is refused with 429 + Retry-After (default 16).
	MaxInflight int
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// SuspectAfter demotes a worker to suspect (and probes it) after
	// that long without a heartbeat (default 3s); DeadAfter declares a
	// silent suspect dead (default 10s). SweepEvery is the health
	// ticker interval (default SuspectAfter/2).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	SweepEvery   time.Duration
	// RPCTimeout bounds each worker RPC attempt except the long-lived
	// event stream (default 10s); RetryBudget is attempts per RPC
	// (default 3); BackoffSeed seeds the retry jitter (default 1).
	RPCTimeout  time.Duration
	RetryBudget int
	BackoffSeed int64
	// MigrationBudget bounds how many times one job may migrate before
	// the coordinator gives up and fails it (default 3).
	MigrationBudget int
	// NoLocalRun disables the zero-live-workers degradation rung where
	// the coordinator runs the job in-process; with it set, such jobs
	// fail with errNoWorkers instead.
	NoLocalRun bool
	// Logf receives coordinator diagnostics (nil discards).
	Logf func(format string, args ...any)
	// Client is the HTTP client for worker RPCs (default: no global
	// timeout — per-RPC deadlines come from contexts, and the event
	// stream is long-lived by design).
	Client *http.Client
}

func (c Config) normalize() Config {
	if c.MaxInflight < 1 {
		c.MaxInflight = 16
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 10 * time.Second
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.SuspectAfter / 2
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 10 * time.Second
	}
	if c.RetryBudget < 1 {
		c.RetryBudget = 3
	}
	if c.BackoffSeed == 0 {
		c.BackoffSeed = 1
	}
	if c.MigrationBudget < 1 {
		c.MigrationBudget = 3
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Coordinator fronts a fleet of placed workers behind the single-daemon
// job API: clients submit, watch, and cancel jobs against it exactly as
// against one placed, while it routes each job to the least-loaded
// healthy worker, relays the worker's event stream into the client's,
// mirrors search checkpoints, and migrates jobs off workers that die
// or drain. See the package comment for the degradation ladder.
type Coordinator struct {
	cfg  Config
	srv  *serve.Server
	reg  *registry
	pool *dispatchPool
	bo   *Backoff

	sweepStop chan struct{}
	sweepDone chan struct{}

	httpSrv *http.Server
	ln      net.Listener
}

// New builds a coordinator (wrapping a serve.Server whose Pool and
// Runner are the fleet's) and starts its health sweeper. Call Shutdown
// before discarding it.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.normalize()
	c := &Coordinator{
		cfg:       cfg,
		reg:       newRegistry(),
		pool:      newDispatchPool(cfg.MaxInflight),
		bo:        NewBackoff(cfg.BackoffSeed),
		sweepStop: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	srv, err := serve.NewServer(serve.Config{
		Dir:        cfg.Dir,
		RetryAfter: cfg.RetryAfter,
		Logf:       cfg.Logf,
		Runner:     c.runJob,
		Pool:       c.pool,
	})
	if err != nil {
		return nil, err
	}
	c.srv = srv
	bindGauges(c.reg, time.Now)
	go c.sweeper()
	return c, nil
}

// Server exposes the wrapped job server (job table, Submit, Drain).
func (c *Coordinator) Server() *serve.Server { return c.srv }

// Workers snapshots the registry (GET /fleet/v1/workers).
func (c *Coordinator) Workers() []WorkerInfo { return c.reg.infos() }

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Coordinator) sweeper() {
	defer close(c.sweepDone)
	tick := time.NewTicker(c.cfg.SweepEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			c.reg.sweep(time.Now(), c.cfg.SuspectAfter, c.cfg.DeadAfter, c.probe)
		case <-c.sweepStop:
			return
		}
	}
}

// probe asks a suspect worker for proof of life.
func (c *Coordinator) probe(url string) bool {
	timeout := c.cfg.RPCTimeout
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Handler returns the coordinator's HTTP API: the fleet endpoints
//
//	POST /fleet/v1/heartbeat  worker heartbeat (Beat JSON)
//	GET  /fleet/v1/workers    registry snapshot
//
// layered over the complete single-daemon job API (submit, status,
// events, cancel, checkpoint, metrics) of the wrapped serve.Server —
// one endpoint, fleet-or-not.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fleet/v1/heartbeat", c.handleBeat)
	mux.HandleFunc("GET /fleet/v1/workers", c.handleWorkers)
	mux.Handle("/", c.srv.Handler())
	return mux
}

func (c *Coordinator) handleBeat(w http.ResponseWriter, r *http.Request) {
	var b Beat
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		http.Error(w, "decode beat: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !strings.HasPrefix(b.URL, "http://") && !strings.HasPrefix(b.URL, "https://") {
		http.Error(w, fmt.Sprintf("beat url %q is not an http(s) base URL", b.URL), http.StatusBadRequest)
		return
	}
	c.reg.beat(b, time.Now())
	obsBeats.Inc()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintln(w, "{}")
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(c.reg.infos())
}

// Start binds addr and serves the API in a background goroutine.
func (c *Coordinator) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("fleet: listen %s: %w", addr, err)
	}
	c.ln = ln
	c.httpSrv = &http.Server{
		Handler:           c.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = c.httpSrv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Addr returns the bound listen address ("" before Start).
func (c *Coordinator) Addr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Shutdown drains gracefully: stop the health sweeper, drain the job
// layer (in-flight relays forward the cancellation to their workers
// and collect best-so-far results), then close the HTTP listener.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	select {
	case <-c.sweepStop:
	default:
		close(c.sweepStop)
	}
	<-c.sweepDone
	err := c.srv.Shutdown(ctx)
	if c.httpSrv != nil {
		herr := c.httpSrv.Shutdown(ctx)
		if herr != nil {
			_ = c.httpSrv.Close()
		}
		if err == nil {
			err = herr
		}
	}
	return err
}

// outcome classification for one placement attempt on one worker.
type vKind int

const (
	vDone vKind = iota
	vFailed
	vCancelled
	vWorkerLost
)

type outcome struct {
	kind           vKind
	result         *serve.Result
	err            error
	resumeRejected bool
	ckpt           *mcts.Snapshot
}

// runJob is the coordinator's job runner, injected as the wrapped
// serve.Server's Runner: route the job to a healthy worker, relay and
// mirror until it settles, and climb the degradation ladder on every
// failure. FreshRoot is forced on so a migrated (or locally restarted)
// job lands the byte-identical result of an uninterrupted run.
func (c *Coordinator) runJob(ctx context.Context, j *serve.Job) (*serve.Result, error) {
	// The proxy job's working directory holds the mirrored checkpoint
	// and the persisted result; local fallback creates it too, but the
	// remote path needs it first.
	if err := os.MkdirAll(j.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: job dir: %w", err)
	}
	spec := j.Spec
	spec.FreshRoot = true
	resume := spec.Resume
	migrations := 0
	var history []error

	for {
		if ctx.Err() != nil {
			// Cancelled between placements; there is no best-so-far to
			// collect because no worker holds the job right now.
			return nil, nil
		}
		w := c.reg.pick()
		if w == nil {
			if c.cfg.NoLocalRun {
				if len(history) > 0 {
					return nil, errors.Join(append(history, errNoWorkers)...)
				}
				return nil, errNoWorkers
			}
			// Degradation rung: zero live workers — run in-process so
			// the fleet endpoint stays useful as a single daemon.
			obsLocalRuns.Inc()
			j.AppendEvent("fleet", "no live workers; running locally on the coordinator")
			spec.Resume = resume
			res, err := serve.RunSpecAs(ctx, j, spec)
			if res != nil {
				res.Worker = "local"
				res.Migrations = migrations
			}
			return res, err
		}

		spec.Resume = resume
		out := c.runOnWorker(ctx, j, w, spec)
		c.reg.done(w)

		switch out.kind {
		case vDone:
			out.result.Worker = w.URL()
			out.result.Migrations = migrations
			return out.result, nil

		case vCancelled:
			if out.result != nil {
				out.result.Worker = w.URL()
				out.result.Migrations = migrations
			}
			return out.result, nil

		case vFailed:
			if out.resumeRejected && resume != nil {
				// The worker refused our snapshot (design mismatch, a
				// torn mirror): drop it and restart from scratch rather
				// than failing the job — FreshRoot keeps the answer
				// identical either way.
				obsResumeFallbacks.Inc()
				j.AppendEvent("fleet", "worker rejected the resume checkpoint; restarting from scratch")
				history = append(history, out.err)
				resume = nil
				continue
			}
			return nil, out.err

		case vWorkerLost:
			migrations++
			obsMigrations.Inc()
			history = append(history, out.err)
			if migrations > c.cfg.MigrationBudget {
				return nil, fmt.Errorf("fleet: migration budget (%d) exhausted: %w",
					c.cfg.MigrationBudget, errors.Join(history...))
			}
			if out.ckpt != nil {
				resume = out.ckpt
			}
			if resume != nil {
				j.AppendEvent("fleet", fmt.Sprintf(
					"worker %s lost; migrating with checkpoint (%d groups committed)",
					w.URL(), len(resume.Committed)))
			} else {
				obsResumeFallbacks.Inc()
				j.AppendEvent("fleet", fmt.Sprintf(
					"worker %s lost; no usable checkpoint, restarting from scratch", w.URL()))
			}
			c.logf("fleet: job %s migrating off %s (migration %d): %v", j.ID, w.URL(), migrations, out.err)
		}
	}
}

// runOnWorker places the job on w and relays until it settles or the
// worker is lost. It owns the remote job's full lifecycle: submit with
// retry, event relay with seq-dedup and reattach, checkpoint
// mirroring, cancel forwarding, and terminal classification.
func (c *Coordinator) runOnWorker(ctx context.Context, j *serve.Job, w *Worker, spec serve.Spec) outcome {
	rid, err := c.submit(ctx, w, spec)
	if err != nil {
		if isResumeRejection(err) {
			return outcome{kind: vFailed, err: err, resumeRejected: true}
		}
		var perm errPermanent
		if errors.As(err, &perm) {
			return outcome{kind: vFailed, err: err}
		}
		c.reg.markDead(w.URL())
		return outcome{kind: vWorkerLost, err: fmt.Errorf("fleet: submit to %s: %w", w.URL(), err)}
	}
	obsJobsRouted.Inc()
	j.AppendEvent("fleet", fmt.Sprintf("assigned to worker %s as %s", w.URL(), rid))

	// Forward a client cancellation (or coordinator drain) to the
	// worker so the remote flow commits its best-so-far and finishes.
	fwdDone := make(chan struct{})
	defer close(fwdDone)
	go func() {
		select {
		case <-ctx.Done():
			c.forwardCancel(w, rid)
		case <-fwdDone:
		}
	}()

	maxSeen := 0
	var ckpt *mcts.Snapshot
	for {
		streamErr := c.streamEvents(ctx, j, w, rid, &maxSeen, &ckpt)

		st, err := c.fetchStatus(ctx, w, rid)
		if err != nil {
			c.reg.markDead(w.URL())
			return outcome{kind: vWorkerLost, ckpt: ckpt,
				err: fmt.Errorf("fleet: worker %s unreachable after stream break: %w", w.URL(), err)}
		}
		if !st.State.Terminal() {
			if ctx.Err() != nil {
				// Our side is cancelled; the forwarded DELETE makes the
				// remote flow commit its best-so-far. Give it a bounded
				// window to settle so that result isn't thrown away.
				st2, ok := c.awaitRemoteTerminal(w, rid)
				if !ok {
					return outcome{kind: vCancelled}
				}
				st = st2
			} else {
				// Transient stream break (streamErr) with a live worker:
				// reattach — the SSE endpoint replays history and the
				// seq-dedup in relayEvent drops the duplicates.
				_ = streamErr
				continue
			}
		}

		// Drain the tail of the event log the broken stream missed.
		c.relayStatusEvents(ctx, j, w, rid, &maxSeen, &ckpt)

		switch st.State {
		case serve.StateDone:
			if st.Result == nil {
				return outcome{kind: vFailed, err: fmt.Errorf("fleet: worker %s reported done without a result", w.URL())}
			}
			if st.Result.Interrupted && ctx.Err() == nil {
				// The worker drained under us: its flow committed early
				// and checkpointed. Treat as a planned migration — pick
				// up the final checkpoint and finish the job elsewhere.
				if sn := c.fetchCheckpoint(ctx, j, w, rid); sn != nil {
					ckpt = sn
				}
				return outcome{kind: vWorkerLost, ckpt: ckpt,
					err: fmt.Errorf("fleet: worker %s drained mid-job", w.URL())}
			}
			return outcome{kind: vDone, result: st.Result}
		case serve.StateCancelled:
			if ctx.Err() != nil {
				return outcome{kind: vCancelled, result: st.Result}
			}
			return outcome{kind: vFailed, err: fmt.Errorf("fleet: job cancelled on worker %s outside fleet control", w.URL())}
		default: // StateFailed
			err := fmt.Errorf("fleet: job failed on worker %s: %s", w.URL(), st.Error)
			return outcome{kind: vFailed, err: err, resumeRejected: isResumeRejection(errors.New(st.Error))}
		}
	}
}

// submit POSTs the spec to the worker with retry/backoff; 4xx is
// permanent, 429/5xx and transport errors are retried.
func (c *Coordinator) submit(ctx context.Context, w *Worker, spec serve.Spec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", Permanent(err)
	}
	var rid string
	err = Retry(ctx, c.cfg.RetryBudget, c.cfg.RPCTimeout, c.bo, "submit to "+w.URL(), func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.URL()+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return Permanent(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			err := fmt.Errorf("worker answered %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
			if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
				return Permanent(err)
			}
			return err
		}
		var st serve.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return err
		}
		rid = st.ID
		return nil
	})
	return rid, err
}

// streamEvents attaches to the worker job's SSE stream and relays
// every not-yet-seen event into j, mirroring a checkpoint after each
// progress event. Returns nil when the stream completed (remote job
// terminal), an error when it broke. Blocks until one or the other,
// the context ends, or the worker is declared dead.
func (c *Coordinator) streamEvents(ctx context.Context, j *serve.Job, w *Worker, rid string, maxSeen *int, ckpt **mcts.Snapshot) error {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-c.reg.deadCh(w):
			cancel()
		case <-sctx.Done():
		}
	}()

	req, err := http.NewRequestWithContext(sctx, http.MethodGet, w.URL()+"/v1/jobs/"+rid+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fleet: event stream answered %d", resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev serve.Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			return fmt.Errorf("fleet: malformed event from %s: %w", w.URL(), err)
		}
		c.relayEvent(ctx, j, w, rid, ev, maxSeen, ckpt)
	}
	return sc.Err()
}

// relayEvent deduplicates by remote sequence number and forwards one
// event into the client-visible job, mirroring checkpoints on
// progress. Remote state transitions are relayed as fleet events —
// the proxy job has its own lifecycle.
func (c *Coordinator) relayEvent(ctx context.Context, j *serve.Job, w *Worker, rid string, ev serve.Event, maxSeen *int, ckpt **mcts.Snapshot) {
	if ev.Seq <= *maxSeen {
		return
	}
	*maxSeen = ev.Seq
	switch ev.Type {
	case "state":
		j.AppendEvent("fleet", "worker job state: "+ev.Data)
	case "progress":
		j.AppendEvent(ev.Type, ev.Data)
		if sn := c.fetchCheckpoint(ctx, j, w, rid); sn != nil {
			*ckpt = sn
		}
	default:
		j.AppendEvent(ev.Type, ev.Data)
	}
}

// relayStatusEvents drains the remote job's full event log once more
// over plain status polling — the tail a broken SSE stream missed.
func (c *Coordinator) relayStatusEvents(ctx context.Context, j *serve.Job, w *Worker, rid string, maxSeen *int, ckpt **mcts.Snapshot) {
	rctx, cancel := context.WithTimeout(context.Background(), c.cfg.RPCTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, w.URL()+"/v1/jobs/"+rid+"/events", nil)
	if err != nil {
		return
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev serve.Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			return
		}
		c.relayEvent(ctx, j, w, rid, ev, maxSeen, ckpt)
	}
}

// fetchCheckpoint mirrors the worker job's current search.ckpt: fetch,
// parse (a corrupt body is dropped — the previous good mirror, if any,
// stays authoritative), persist crash-safely under the coordinator's
// own job dir, and return the parsed snapshot.
func (c *Coordinator) fetchCheckpoint(ctx context.Context, j *serve.Job, w *Worker, rid string) *mcts.Snapshot {
	rctx, cancel := context.WithTimeout(context.Background(), c.cfg.RPCTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, w.URL()+"/v1/jobs/"+rid+"/checkpoint", nil)
	if err != nil {
		return nil
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return nil
	}
	sn, err := mcts.ParseSnapshot(data, w.URL()+"/"+rid)
	if err != nil {
		c.logf("fleet: job %s: corrupt checkpoint from %s dropped: %v", j.ID, w.URL(), err)
		return nil
	}
	if err := atomicio.WriteFileBytes(filepath.Join(j.Dir, "search.ckpt"), data); err != nil {
		c.logf("fleet: job %s: mirror checkpoint: %v", j.ID, err)
	}
	return sn
}

// fetchStatus polls the remote job's status with retry/backoff.
func (c *Coordinator) fetchStatus(ctx context.Context, w *Worker, rid string) (serve.Status, error) {
	var st serve.Status
	err := Retry(ctx, c.cfg.RetryBudget, c.cfg.RPCTimeout, c.bo, "status from "+w.URL(), func(rctx context.Context) error {
		// Status must remain fetchable after ctx is cancelled (to
		// collect the best-so-far result a forwarded DELETE produced),
		// so the attempt deadline stands alone.
		if ctx.Err() != nil {
			var cancel context.CancelFunc
			rctx, cancel = context.WithTimeout(context.Background(), c.cfg.RPCTimeout)
			defer cancel()
		}
		req, err := http.NewRequestWithContext(rctx, http.MethodGet, w.URL()+"/v1/jobs/"+rid, nil)
		if err != nil {
			return Permanent(err)
		}
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			err := fmt.Errorf("worker answered %d", resp.StatusCode)
			if resp.StatusCode == http.StatusNotFound {
				// The worker restarted and lost its job table.
				return Permanent(err)
			}
			return err
		}
		return json.NewDecoder(resp.Body).Decode(&st)
	})
	return st, err
}

// awaitRemoteTerminal polls the remote job after a local cancellation
// until it settles (the forwarded DELETE makes the worker's flow
// commit its best-so-far quickly) or the RPC timeout elapses.
func (c *Coordinator) awaitRemoteTerminal(w *Worker, rid string) (serve.Status, bool) {
	deadline := time.Now().Add(c.cfg.RPCTimeout)
	for {
		st, err := c.fetchStatus(context.Background(), w, rid)
		if err == nil && st.State.Terminal() {
			return st, true
		}
		if err != nil || time.Now().After(deadline) {
			return serve.Status{}, false
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// forwardCancel relays a client DELETE (or coordinator drain) to the
// worker; best-effort, the DELETE is idempotent on the worker side.
func (c *Coordinator) forwardCancel(w *Worker, rid string) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.RPCTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, w.URL()+"/v1/jobs/"+rid, nil)
	if err != nil {
		return
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// isResumeRejection recognises a worker's refusal of a resume snapshot
// (serve.RunSpec and Spec.Validate both word it with "resume").
func isResumeRejection(err error) bool {
	return err != nil && strings.Contains(err.Error(), "resume")
}
