// Package fleet is the fault-tolerant placement fleet: a coordinator
// (cmd/placefleet) that fronts a set of placed workers behind the same
// job API a single daemon exposes, so clients keep one endpoint while
// jobs are routed to the least-loaded healthy worker, retried across
// transient failures, and migrated — checkpoint and all — off workers
// that die or drain mid-job.
//
// The pieces, coordinator-side: a worker registry driven by heartbeats
// and probes (healthy → suspect → dead), a seeded-jittered exponential
// backoff with a per-job retry budget, an elastic dispatch pool that
// plugs into serve.Server's Pool seam, and the job runner that proxies
// the worker's event stream while mirroring its checkpoints so a
// mid-job failure resumes elsewhere. Worker-side: a Heartbeater that
// placed runs when pointed at a coordinator.
//
// Degradation ladder (DESIGN.md §12): healthy worker → other healthy
// worker (migration, resume-from-checkpoint) → restart from scratch
// (checkpoint missing or corrupt) → run locally on the coordinator
// (zero live workers) → refuse admission (429/503, local pool full).
// Every rung keeps the client's single SSE stream alive; with
// Spec.FreshRoot forced on, the final placement is bit-identical to an
// uninterrupted run no matter which rungs fired.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Backoff computes jittered exponential delays: attempt k (0-based)
// waits Base·Factor^k, capped at Max, then stretched by a uniform
// factor in [1-Jitter, 1+Jitter]. The jitter draws from a seeded
// source, so a fixed seed reproduces the exact schedule — retry tests
// pin the sequence instead of sleeping and hoping.
type Backoff struct {
	Base   time.Duration
	Max    time.Duration
	Factor float64
	Jitter float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff returns a Backoff with the fleet defaults (100ms base,
// 5s cap, doubling, ±20% jitter) and the given jitter seed.
func NewBackoff(seed int64) *Backoff {
	return &Backoff{
		Base:   100 * time.Millisecond,
		Max:    5 * time.Second,
		Factor: 2,
		Jitter: 0.2,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Delay returns the wait before retry attempt (0-based: the delay
// after the first failure is Delay(0)).
func (b *Backoff) Delay(attempt int) time.Duration {
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 {
		b.mu.Lock()
		if b.rng == nil {
			b.rng = rand.New(rand.NewSource(1))
		}
		f := 1 + b.Jitter*(2*b.rng.Float64()-1)
		b.mu.Unlock()
		d *= f
	}
	return time.Duration(d)
}

// errPermanent marks an error Retry must not retry.
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }
func (e errPermanent) Unwrap() error { return e.err }

// Permanent wraps err so Retry stops immediately instead of burning
// the rest of its budget — a 400 from a worker will be a 400 forever.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return errPermanent{err}
}

// Retry runs fn up to attempts times with per-attempt timeout and
// backoff delays between attempts. On exhaustion it returns the
// joined errors of every attempt, each labelled with the target and
// attempt number, so a post-mortem names every worker RPC that failed
// rather than just the last one. A Permanent-wrapped error (or ctx
// ending) stops early.
func Retry(ctx context.Context, attempts int, timeout time.Duration, b *Backoff, label string, fn func(ctx context.Context) error) error {
	if attempts < 1 {
		attempts = 1
	}
	var errs []error
	for k := 0; k < attempts; k++ {
		actx := ctx
		var cancel context.CancelFunc
		if timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, timeout)
		}
		err := fn(actx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return nil
		}
		errs = append(errs, fmt.Errorf("%s attempt %d/%d: %w", label, k+1, attempts, err))
		var perm errPermanent
		if errors.As(err, &perm) {
			break
		}
		if ctx.Err() != nil {
			break
		}
		if k < attempts-1 {
			obsRetries.Inc()
			select {
			case <-time.After(b.Delay(k)):
			case <-ctx.Done():
				return errors.Join(append(errs, ctx.Err())...)
			}
		}
	}
	return errors.Join(errs...)
}
