package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Heartbeater is the worker-side half of the fleet protocol: placed
// runs one per process when started with -fleet, POSTing a Beat to the
// coordinator every Every interval until its context ends. A missing
// coordinator is not an error — the worker keeps serving and keeps
// trying, so start order between coordinator and workers is free.
type Heartbeater struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Self is the worker's advertised base URL, as clients of the
	// coordinator must reach it.
	Self string
	// Every is the beat interval (default 1s).
	Every time.Duration
	// Load supplies the worker's current load (serve.Server.LoadInfo).
	Load func() (running, queued int, draining bool)
	// Gate, when set, is consulted before each beat; false skips it.
	// Fault injection hooks in here to simulate partitions.
	Gate func() bool
	// Client is the HTTP client (default: 5s-timeout client).
	Client *http.Client
	// Logf receives beat diagnostics (nil discards). Only transitions
	// are logged — a steady heartbeat is silent.
	Logf func(format string, args ...any)
}

// Run beats until ctx ends. It always sends one beat immediately so a
// freshly started worker is routable without waiting out an interval.
func (h *Heartbeater) Run(ctx context.Context) {
	every := h.Every
	if every <= 0 {
		every = time.Second
	}
	client := h.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	ok := true // log only on state changes
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		if h.Gate == nil || h.Gate() {
			err := h.beat(ctx, client)
			if err != nil && ok {
				h.logf("fleet: heartbeat to %s failing: %v", h.Coordinator, err)
			}
			if err == nil && !ok {
				h.logf("fleet: heartbeat to %s restored", h.Coordinator)
			}
			ok = err == nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return
		}
	}
}

func (h *Heartbeater) beat(ctx context.Context, client *http.Client) error {
	var b Beat
	b.URL = h.Self
	if h.Load != nil {
		b.Running, b.Queued, b.Draining = h.Load()
	}
	body, err := json.Marshal(b)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		h.Coordinator+"/fleet/v1/heartbeat", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: heartbeat: coordinator answered %d", resp.StatusCode)
	}
	return nil
}

func (h *Heartbeater) logf(format string, args ...any) {
	if h.Logf != nil {
		h.Logf(format, args...)
	}
}
