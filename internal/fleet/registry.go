package fleet

import (
	"sort"
	"sync"
	"time"
)

// WorkerState is a worker's position in the health state machine:
//
//	healthy --missed beats (SuspectAfter)--> suspect
//	suspect --probe ok / fresh beat-------> healthy
//	suspect --probe fails or DeadAfter----> dead
//	dead    --fresh beat------------------> healthy (revived)
//
// Only healthy, non-draining workers receive new jobs; a dead worker's
// in-flight jobs are migrated.
type WorkerState string

const (
	StateHealthy WorkerState = "healthy"
	StateSuspect WorkerState = "suspect"
	StateDead    WorkerState = "dead"
)

// Beat is one worker heartbeat, POSTed to the coordinator's
// /fleet/v1/heartbeat by a placed worker's Heartbeater.
type Beat struct {
	// URL is the worker's advertised base URL (http://host:port).
	URL string `json:"url"`
	// Running / Queued / Draining mirror serve.Server.LoadInfo.
	Running  int  `json:"running"`
	Queued   int  `json:"queued"`
	Draining bool `json:"draining"`
}

// Worker is the coordinator's view of one placed process. All fields
// behind the registry's lock; read through Info.
type Worker struct {
	url string

	state    WorkerState
	lastBeat time.Time
	running  int
	queued   int
	draining bool
	// active counts jobs this coordinator currently has routed to the
	// worker — the load-balancing signal (beats lag; this does not).
	active int
	// order is the registration sequence number, the pick tie-break.
	order int
	// dead is closed when the worker transitions to dead, so a relay
	// blocked on the worker's event stream wakes up immediately instead
	// of waiting out a TCP timeout. Revival allocates a fresh channel.
	dead chan struct{}
}

// URL returns the worker's advertised base URL.
func (w *Worker) URL() string { return w.url }

// WorkerInfo is the wire form of one worker (GET /fleet/v1/workers).
type WorkerInfo struct {
	URL      string      `json:"url"`
	State    WorkerState `json:"state"`
	LastBeat time.Time   `json:"last_beat"`
	Running  int         `json:"running"`
	Queued   int         `json:"queued"`
	Draining bool        `json:"draining"`
	Active   int         `json:"active"`
}

// registry tracks workers and drives the health state machine. Beats
// arrive from HTTP; sweeps run on the coordinator's health ticker with
// an injectable clock and probe so tests are wall-clock-free.
type registry struct {
	mu      sync.Mutex
	workers map[string]*Worker
	nextOrd int
}

func newRegistry() *registry {
	return &registry{workers: make(map[string]*Worker)}
}

// beat registers or revives the worker and refreshes its load view.
func (r *registry) beat(b Beat, now time.Time) *Worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[b.URL]
	if !ok {
		w = &Worker{url: b.URL, order: r.nextOrd, dead: make(chan struct{})}
		r.nextOrd++
		r.workers[b.URL] = w
	}
	if w.state == StateDead {
		// Revival: a restarted worker reuses the URL but none of the
		// dead incarnation's state — fresh dead channel, zero active
		// (its jobs were already migrated away).
		w.dead = make(chan struct{})
		w.active = 0
	}
	w.state = StateHealthy
	w.lastBeat = now
	w.running, w.queued, w.draining = b.Running, b.Queued, b.Draining
	return w
}

// sweep advances the health state machine: a healthy worker whose last
// beat is older than suspectAfter becomes suspect and is probed (probe
// true → healthy again); a suspect worker that fails its probe or goes
// deadAfter without a beat becomes dead. probe runs synchronously
// under the caller's deadline discipline — the coordinator passes a
// short-timeout HTTP GET /healthz.
func (r *registry) sweep(now time.Time, suspectAfter, deadAfter time.Duration, probe func(url string) bool) {
	r.mu.Lock()
	var check []*Worker
	for _, w := range r.workers {
		if w.state != StateDead && now.Sub(w.lastBeat) > suspectAfter {
			w.state = StateSuspect
			check = append(check, w)
		}
	}
	r.mu.Unlock()

	for _, w := range check {
		alive := probe != nil && probe(w.url)
		r.mu.Lock()
		if w.state != StateSuspect {
			// A beat raced the probe and already revived it.
			r.mu.Unlock()
			continue
		}
		switch {
		case alive:
			// Reachable but not beating (clock skew, a wedged beat
			// loop): serving traffic is proof of life, but keep the
			// stale lastBeat so continued silence re-suspects it.
			w.state = StateHealthy
		case now.Sub(w.lastBeat) > deadAfter:
			w.state = StateDead
			close(w.dead)
		}
		r.mu.Unlock()
	}
}

// markDead force-transitions a worker the coordinator caught red-handed
// (a broken event stream plus a failed direct probe) without waiting
// for the beat-driven sweep.
func (r *registry) markDead(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[url]; ok && w.state != StateDead {
		w.state = StateDead
		close(w.dead)
	}
}

// pick returns the healthy, non-draining worker with the fewest active
// jobs (ties broken by registration order) and increments its active
// count; nil when no worker qualifies. Callers must release with done.
func (r *registry) pick() *Worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best *Worker
	for _, w := range r.workers {
		if w.state != StateHealthy || w.draining {
			continue
		}
		if best == nil || w.active < best.active || (w.active == best.active && w.order < best.order) {
			best = w
		}
	}
	if best != nil {
		best.active++
	}
	return best
}

// done releases one active slot taken by pick.
func (r *registry) done(w *Worker) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w.active > 0 {
		w.active--
	}
}

// deadCh returns the channel closed when w dies (snapshot under lock:
// revival swaps the channel).
func (r *registry) deadCh(w *Worker) <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return w.dead
}

// state returns w's current health state.
func (r *registry) state(w *Worker) WorkerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return w.state
}

// draining reports the worker's last-advertised drain flag.
func (r *registry) isDraining(w *Worker) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return w.draining
}

// live counts healthy workers (the workers_live gauge).
func (r *registry) live() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, w := range r.workers {
		if w.state == StateHealthy {
			n++
		}
	}
	return n
}

// maxLag returns the oldest healthy-or-suspect worker heartbeat age —
// the heartbeat_lag_seconds gauge; 0 with no live workers.
func (r *registry) maxLag(now time.Time) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lag time.Duration
	for _, w := range r.workers {
		if w.state == StateDead {
			continue
		}
		if d := now.Sub(w.lastBeat); d > lag {
			lag = d
		}
	}
	return lag
}

// infos snapshots every worker in registration order.
func (r *registry) infos() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerInfo, 0, len(r.workers))
	ws := make([]*Worker, 0, len(r.workers))
	for _, w := range r.workers {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].order < ws[j].order })
	for _, w := range ws {
		out = append(out, WorkerInfo{
			URL: w.url, State: w.state, LastBeat: w.lastBeat,
			Running: w.running, Queued: w.queued, Draining: w.draining,
			Active: w.active,
		})
	}
	return out
}
