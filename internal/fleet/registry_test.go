package fleet

import (
	"testing"
	"time"
)

var t0 = time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)

func TestRegistryHealthStateMachine(t *testing.T) {
	r := newRegistry()
	w := r.beat(Beat{URL: "http://w1"}, t0)
	if got := r.state(w); got != StateHealthy {
		t.Fatalf("after beat: %s, want healthy", got)
	}

	// Within the suspect window nothing changes.
	r.sweep(t0.Add(2*time.Second), 3*time.Second, 10*time.Second, func(string) bool { return false })
	if got := r.state(w); got != StateHealthy {
		t.Fatalf("fresh worker swept to %s", got)
	}

	// Past SuspectAfter with a passing probe: demoted and restored.
	probed := 0
	r.sweep(t0.Add(4*time.Second), 3*time.Second, 10*time.Second, func(string) bool { probed++; return true })
	if probed != 1 {
		t.Fatalf("probe called %d times, want 1", probed)
	}
	if got := r.state(w); got != StateHealthy {
		t.Fatalf("reachable suspect settled at %s, want healthy", got)
	}

	// Past SuspectAfter with a failing probe but inside DeadAfter:
	// stays suspect (benefit of the doubt until DeadAfter).
	r.sweep(t0.Add(5*time.Second), 3*time.Second, 10*time.Second, func(string) bool { return false })
	if got := r.state(w); got != StateSuspect {
		t.Fatalf("unreachable suspect inside DeadAfter: %s, want suspect", got)
	}
	select {
	case <-r.deadCh(w):
		t.Fatal("dead channel closed while suspect")
	default:
	}

	// Past DeadAfter with a failing probe: dead, channel closed.
	r.sweep(t0.Add(11*time.Second), 3*time.Second, 10*time.Second, func(string) bool { return false })
	if got := r.state(w); got != StateDead {
		t.Fatalf("silent worker past DeadAfter: %s, want dead", got)
	}
	select {
	case <-r.deadCh(w):
	default:
		t.Fatal("dead channel not closed on death")
	}
	if r.live() != 0 {
		t.Fatalf("live() = %d with only a dead worker", r.live())
	}

	// A fresh beat revives it with a fresh dead channel.
	r.beat(Beat{URL: "http://w1"}, t0.Add(12*time.Second))
	if got := r.state(w); got != StateHealthy {
		t.Fatalf("revived worker: %s, want healthy", got)
	}
	select {
	case <-r.deadCh(w):
		t.Fatal("revived worker's dead channel already closed")
	default:
	}
	if r.live() != 1 {
		t.Fatalf("live() = %d after revival, want 1", r.live())
	}
}

func TestRegistryPickLeastLoaded(t *testing.T) {
	r := newRegistry()
	r.beat(Beat{URL: "http://w1"}, t0)
	r.beat(Beat{URL: "http://w2"}, t0)

	// Tie on active count breaks by registration order.
	a := r.pick()
	if a == nil || a.URL() != "http://w1" {
		t.Fatalf("first pick = %v, want w1 (registration order tie-break)", a)
	}
	// w1 now has one active job; w2 wins.
	b := r.pick()
	if b == nil || b.URL() != "http://w2" {
		t.Fatalf("second pick = %v, want w2 (least loaded)", b)
	}
	// Both loaded equally again: back to w1.
	c := r.pick()
	if c == nil || c.URL() != "http://w1" {
		t.Fatalf("third pick = %v, want w1", c)
	}
	r.done(a)
	r.done(b)
	r.done(c)

	// Draining workers take no new jobs.
	r.beat(Beat{URL: "http://w1", Draining: true}, t0)
	if w := r.pick(); w == nil || w.URL() != "http://w2" {
		t.Fatalf("pick with w1 draining = %v, want w2", w)
	}

	// Dead workers neither.
	r.markDead("http://w2")
	r.beat(Beat{URL: "http://w1", Draining: true}, t0)
	if w := r.pick(); w != nil {
		t.Fatalf("pick with w1 draining and w2 dead = %v, want nil", w)
	}
}

func TestRegistryMaxLag(t *testing.T) {
	r := newRegistry()
	r.beat(Beat{URL: "http://w1"}, t0)
	r.beat(Beat{URL: "http://w2"}, t0.Add(2*time.Second))
	if lag := r.maxLag(t0.Add(3 * time.Second)); lag != 3*time.Second {
		t.Fatalf("maxLag = %v, want 3s (oldest beat)", lag)
	}
	r.markDead("http://w1")
	if lag := r.maxLag(t0.Add(3 * time.Second)); lag != time.Second {
		t.Fatalf("maxLag after w1 death = %v, want 1s (dead excluded)", lag)
	}
}

func TestRegistryInfosOrder(t *testing.T) {
	r := newRegistry()
	r.beat(Beat{URL: "http://w2", Running: 1}, t0)
	r.beat(Beat{URL: "http://w1", Queued: 3}, t0)
	infos := r.infos()
	if len(infos) != 2 || infos[0].URL != "http://w2" || infos[1].URL != "http://w1" {
		t.Fatalf("infos order = %+v, want registration order", infos)
	}
	if infos[0].Running != 1 || infos[1].Queued != 3 {
		t.Fatalf("infos lost load fields: %+v", infos)
	}
}
