// Package rowlegal legalizes standard cells onto placement rows with
// the classic Tetris greedy (Hill's algorithm, the scheme inside many
// production flows and the final step any DREAMPlace-style engine
// performs): cells are processed in x order and packed left-to-right
// into row segments (rows minus macro blockages), choosing the segment
// that minimises displacement from the global-placement position.
//
// The result is a fully legal cell placement: every cell sits on a row,
// inside the region, overlapping neither macros nor other cells.
package rowlegal

import (
	"fmt"
	"math"
	"sort"

	"macroplace/internal/geom"
	"macroplace/internal/netlist"
)

// Config tunes the legalizer.
type Config struct {
	// RowHeight overrides the row height (0: dominant cell height).
	RowHeight float64
	// MaxRowSearch bounds how many rows above/below the desired row
	// are examined per cell (default 24).
	MaxRowSearch int
}

// Result reports legalization quality.
type Result struct {
	// Legalized is the number of cells placed on rows.
	Legalized int
	// Failed is the number of cells that fit in no searched segment
	// (left at their global positions).
	Failed int
	// TotalDisplacement and MaxDisplacement measure the moves.
	TotalDisplacement float64
	MaxDisplacement   float64
	// HPWL is the post-legalization wirelength.
	HPWL float64
}

// segment is a free interval of one row with a packing frontier.
type segment struct {
	y        float64
	lx, ux   float64
	frontier float64
}

// Legalize snaps every movable cell of d onto rows. Macros and fixed
// nodes are obstacles. It mutates d.
func Legalize(d *netlist.Design, cfg Config) (Result, error) {
	phys := d.Phys
	rowH := cfg.RowHeight
	if rowH <= 0 && phys != nil && phys.RowHeight > 0 {
		// DEF designs carry the real row geometry; honour it so the
		// emitted placement sits on the design's own rows.
		rowH = phys.RowHeight
	}
	if rowH <= 0 {
		rowH = dominantCellHeight(d)
	}
	if rowH <= 0 {
		return Result{}, fmt.Errorf("rowlegal: no cells to derive a row height from")
	}
	if cfg.MaxRowSearch <= 0 {
		cfg.MaxRowSearch = 24
	}
	originY := d.Region.Ly
	if phys != nil && phys.RowHeight > 0 && phys.RowOriginY > d.Region.Ly && phys.RowOriginY < d.Region.Uy {
		originY = phys.RowOriginY
	}
	nRows := int((d.Region.Uy - originY) / rowH)
	if nRows < 1 {
		return Result{}, fmt.Errorf("rowlegal: region height %v below one row %v", d.Region.H(), rowH)
	}

	// Obstacles: macros (movable and fixed) and any fixed non-pad.
	// Under active constraints macros are inflated by their pads so
	// cells keep out of halos and channels too.
	var obstacles []geom.Rect
	for i := range d.Nodes {
		n := &d.Nodes[i]
		if n.Kind == netlist.Macro || (n.Fixed && n.Kind != netlist.Pad) {
			r := n.Rect()
			if n.Kind == netlist.Macro && phys.Active() {
				px, py := phys.Pad(n.Name)
				r = r.Inflate(px, py)
			}
			obstacles = append(obstacles, r)
		}
	}

	// Build row segments.
	rows := make([][]segment, nRows)
	for r := 0; r < nRows; r++ {
		y := originY + float64(r)*rowH
		row := geom.Rect{Lx: d.Region.Lx, Ly: y, Ux: d.Region.Ux, Uy: y + rowH}
		free := []geom.Rect{row}
		for _, ob := range obstacles {
			if !ob.Overlap(row) {
				continue
			}
			var next []geom.Rect
			for _, f := range free {
				if !ob.Overlap(f) {
					next = append(next, f)
					continue
				}
				if ob.Lx > f.Lx {
					next = append(next, geom.Rect{Lx: f.Lx, Ly: f.Ly, Ux: math.Min(ob.Lx, f.Ux), Uy: f.Uy})
				}
				if ob.Ux < f.Ux {
					next = append(next, geom.Rect{Lx: math.Max(ob.Ux, f.Lx), Ly: f.Ly, Ux: f.Ux, Uy: f.Uy})
				}
			}
			free = next
		}
		for _, f := range free {
			if f.W() > 0 {
				rows[r] = append(rows[r], segment{y: y, lx: f.Lx, ux: f.Ux, frontier: f.Lx})
			}
		}
		sort.Slice(rows[r], func(a, b int) bool { return rows[r][a].lx < rows[r][b].lx })
	}

	// Cells in x order (classic Tetris sweep).
	cells := d.CellIndices()
	movable := cells[:0:0]
	for _, ci := range cells {
		if !d.Nodes[ci].Fixed {
			movable = append(movable, ci)
		}
	}
	sort.Slice(movable, func(a, b int) bool {
		na, nb := &d.Nodes[movable[a]], &d.Nodes[movable[b]]
		if na.X != nb.X {
			return na.X < nb.X
		}
		return movable[a] < movable[b]
	})

	var res Result
	for _, ci := range movable {
		n := &d.Nodes[ci]
		desiredRow := int((n.Y - originY) / rowH)
		bestCost := math.Inf(1)
		var bestSeg *segment
		var bestX float64
		for dr := 0; dr <= cfg.MaxRowSearch; dr++ {
			for _, r := range []int{desiredRow - dr, desiredRow + dr} {
				if r < 0 || r >= nRows || (dr == 0 && r != desiredRow) {
					continue
				}
				rowCost := math.Abs(float64(r)*rowH + originY - n.Y)
				if rowCost >= bestCost {
					continue // rows farther than the best cost can't win
				}
				for si := range rows[r] {
					seg := &rows[r][si]
					x := math.Max(seg.frontier, n.X)
					if x+n.W > seg.ux {
						// Try packing at the frontier even if left of
						// the desired x.
						x = seg.frontier
						if x+n.W > seg.ux {
							continue
						}
					}
					cost := math.Abs(x-n.X) + rowCost
					if cost < bestCost {
						bestCost = cost
						bestSeg = seg
						bestX = x
					}
				}
				if r == desiredRow {
					break // avoid double-visiting dr == 0
				}
			}
			// Early exit: if the best cost already beats moving one
			// more row, farther rows cannot improve.
			if bestSeg != nil && bestCost < float64(dr)*rowH {
				break
			}
		}
		if bestSeg == nil {
			res.Failed++
			continue
		}
		dx := math.Abs(bestX - n.X)
		dy := math.Abs(bestSeg.y - n.Y)
		disp := dx + dy
		res.TotalDisplacement += disp
		if disp > res.MaxDisplacement {
			res.MaxDisplacement = disp
		}
		n.X, n.Y = bestX, bestSeg.y
		bestSeg.frontier = bestX + n.W
		res.Legalized++
	}
	res.HPWL = d.HPWL()
	return res, nil
}

// dominantCellHeight returns the most common movable-cell height.
func dominantCellHeight(d *netlist.Design) float64 {
	counts := make(map[float64]int)
	for i := range d.Nodes {
		n := &d.Nodes[i]
		if n.Kind == netlist.Cell && !n.Fixed && n.H > 0 {
			counts[n.H]++
		}
	}
	var best float64
	bestC := 0
	for h, c := range counts {
		if c > bestC || (c == bestC && h < best) {
			best, bestC = h, c
		}
	}
	return best
}

// CellOverlap returns the total pairwise overlap area among movable
// cells plus cell-macro overlap — the legality metric for tests.
func CellOverlap(d *netlist.Design) float64 {
	cells := d.CellIndices()
	// Sweep by x for near-linear behaviour on legal placements.
	idx := append([]int(nil), cells...)
	sort.Slice(idx, func(a, b int) bool { return d.Nodes[idx[a]].X < d.Nodes[idx[b]].X })
	var total float64
	for i := 0; i < len(idx); i++ {
		ri := d.Nodes[idx[i]].Rect()
		for j := i + 1; j < len(idx); j++ {
			rj := d.Nodes[idx[j]].Rect()
			if rj.Lx >= ri.Ux {
				break
			}
			total += ri.OverlapArea(rj)
		}
	}
	for _, ci := range cells {
		rc := d.Nodes[ci].Rect()
		for i := range d.Nodes {
			if d.Nodes[i].Kind == netlist.Macro {
				total += rc.OverlapArea(d.Nodes[i].Rect())
			}
		}
	}
	return total
}
