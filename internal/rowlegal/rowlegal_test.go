package rowlegal

import (
	"math"
	"testing"

	"macroplace/internal/gen"
	"macroplace/internal/geom"
	"macroplace/internal/gplace"
	"macroplace/internal/netlist"
)

func TestLegalizeSimpleRow(t *testing.T) {
	d := &netlist.Design{Region: geom.NewRect(0, 0, 40, 24)}
	// Three cells piled at the same spot, row height 12.
	for i := 0; i < 3; i++ {
		d.AddNode(netlist.Node{
			Name: string(rune('a' + i)), Kind: netlist.Cell,
			W: 6, H: 12, X: 10, Y: 3,
		})
	}
	res, err := Legalize(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Legalized != 3 || res.Failed != 0 {
		t.Fatalf("result = %+v", res)
	}
	if ov := CellOverlap(d); ov > 1e-9 {
		t.Errorf("overlap after legalization = %v", ov)
	}
	for i := range d.Nodes {
		n := &d.Nodes[i]
		// Cells must sit on a row boundary.
		if math.Mod(n.Y, 12) != 0 {
			t.Errorf("cell %s not row-aligned: y=%v", n.Name, n.Y)
		}
		if !d.Region.ContainsRect(n.Rect()) {
			t.Errorf("cell %s outside region", n.Name)
		}
	}
}

func TestLegalizeAvoidsMacros(t *testing.T) {
	d := &netlist.Design{Region: geom.NewRect(0, 0, 40, 36)}
	d.AddNode(netlist.Node{Name: "M", Kind: netlist.Macro, W: 20, H: 24, X: 10, Y: 0})
	for i := 0; i < 6; i++ {
		d.AddNode(netlist.Node{
			Name: "c" + string(rune('0'+i)), Kind: netlist.Cell,
			W: 5, H: 12, X: 15, Y: 6,
		})
	}
	res, err := Legalize(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("failed cells: %+v", res)
	}
	if ov := CellOverlap(d); ov > 1e-9 {
		t.Errorf("overlap (incl. macro) = %v", ov)
	}
}

func TestLegalizeGeneratedDesign(t *testing.T) {
	d, err := gen.IBM("ibm01", 0.03, 5)
	if err != nil {
		t.Fatal(err)
	}
	gplace.Place(d, gplace.Config{Mode: gplace.MoveAll, Iterations: 6})
	before := d.HPWL()
	res, err := Legalize(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	nCells := len(d.CellIndices())
	if res.Legalized < nCells*95/100 {
		t.Errorf("legalized %d of %d cells", res.Legalized, nCells)
	}
	// Cell-cell overlap must be eliminated for legalized cells; allow
	// a tiny residue from the failed ones.
	var cellArea float64
	for _, ci := range d.CellIndices() {
		cellArea += d.Nodes[ci].Area()
	}
	if ov := CellOverlap(d); ov > 0.01*cellArea {
		t.Errorf("overlap %v (%.2f%% of cell area)", ov, ov/cellArea*100)
	}
	// Wirelength should not explode (legalization is a local motion).
	if res.HPWL > 1.6*before {
		t.Errorf("legalization blew up HPWL: %v -> %v", before, res.HPWL)
	}
	t.Logf("legalized %d/%d, failed %d, meanDisp=%.2f, HPWL %v -> %v",
		res.Legalized, nCells, res.Failed, res.TotalDisplacement/float64(nCells), before, res.HPWL)
}

func TestLegalizeErrorsWithoutCells(t *testing.T) {
	d := &netlist.Design{Region: geom.NewRect(0, 0, 10, 10)}
	d.AddNode(netlist.Node{Name: "m", Kind: netlist.Macro, W: 2, H: 2})
	if _, err := Legalize(d, Config{}); err == nil {
		t.Error("design without cells should error (no row height)")
	}
}

func TestLegalizeRegionTooSmall(t *testing.T) {
	d := &netlist.Design{Region: geom.NewRect(0, 0, 10, 5)}
	d.AddNode(netlist.Node{Name: "c", Kind: netlist.Cell, W: 2, H: 12})
	if _, err := Legalize(d, Config{}); err == nil {
		t.Error("region shorter than one row should error")
	}
}

func TestDominantCellHeight(t *testing.T) {
	d := &netlist.Design{Region: geom.NewRect(0, 0, 100, 100)}
	for i := 0; i < 5; i++ {
		d.AddNode(netlist.Node{Name: "a" + string(rune('0'+i)), Kind: netlist.Cell, W: 2, H: 12})
	}
	d.AddNode(netlist.Node{Name: "tall", Kind: netlist.Cell, W: 2, H: 24})
	if got := dominantCellHeight(d); got != 12 {
		t.Errorf("dominant height = %v, want 12", got)
	}
}

func TestOptimizeDetailedImprovesHPWL(t *testing.T) {
	d, err := gen.IBM("ibm01", 0.03, 7)
	if err != nil {
		t.Fatal(err)
	}
	gplace.Place(d, gplace.Config{Mode: gplace.MoveAll, Iterations: 6})
	if _, err := Legalize(d, Config{}); err != nil {
		t.Fatal(err)
	}
	before := d.HPWL()
	ovBefore := CellOverlap(d)
	res := OptimizeDetailed(d, DetailedConfig{})
	if res.HPWLAfter > res.HPWLBefore {
		t.Errorf("detailed placement worsened HPWL: %v -> %v", res.HPWLBefore, res.HPWLAfter)
	}
	if math.Abs(res.HPWLBefore-before) > 1e-6*before {
		t.Errorf("evaluator disagreed with design HPWL: %v vs %v", res.HPWLBefore, before)
	}
	if math.Abs(d.HPWL()-res.HPWLAfter) > 1e-6*res.HPWLAfter {
		t.Errorf("design HPWL %v != reported %v", d.HPWL(), res.HPWLAfter)
	}
	// Legality preserved (no new overlap beyond float noise).
	if ov := CellOverlap(d); ov > ovBefore+1e-6 {
		t.Errorf("detailed placement created overlap: %v -> %v", ovBefore, ov)
	}
	t.Logf("swaps=%d HPWL %v -> %v (%.2f%%)", res.SwapsApplied,
		res.HPWLBefore, res.HPWLAfter, (res.HPWLBefore-res.HPWLAfter)/res.HPWLBefore*100)
}

func TestTrySwapUnequalWidths(t *testing.T) {
	d := &netlist.Design{Region: geom.NewRect(0, 0, 100, 12)}
	// Wide cell left, narrow right, both pulled toward opposite pads.
	padL := d.AddNode(netlist.Node{Name: "pl", Kind: netlist.Pad, Fixed: true, X: 0, Y: 6})
	padR := d.AddNode(netlist.Node{Name: "pr", Kind: netlist.Pad, Fixed: true, X: 99, Y: 6})
	wide := d.AddNode(netlist.Node{Name: "w", Kind: netlist.Cell, W: 10, H: 12, X: 20, Y: 0})
	narrow := d.AddNode(netlist.Node{Name: "n", Kind: netlist.Cell, W: 4, H: 12, X: 30, Y: 0})
	// wide wants to be right, narrow wants left.
	d.AddNet(netlist.Net{Name: "a", Pins: []netlist.Pin{{Node: wide}, {Node: padR}}})
	d.AddNet(netlist.Net{Name: "b", Pins: []netlist.Pin{{Node: narrow}, {Node: padL}}})
	res := OptimizeDetailed(d, DetailedConfig{})
	if res.SwapsApplied != 1 {
		t.Fatalf("swaps = %d, want 1", res.SwapsApplied)
	}
	if CellOverlap(d) > 1e-9 {
		t.Error("swap created overlap")
	}
	if d.Nodes[wide].X <= d.Nodes[narrow].X {
		t.Error("cells did not exchange order")
	}
}
