package rowlegal

import (
	"math"
	"sort"

	"macroplace/internal/netlist"
)

// DetailedConfig tunes the detailed-placement optimizer.
type DetailedConfig struct {
	// Passes is the number of full sweeps (default 3).
	Passes int
	// WindowGap is the maximum same-row gap (in multiples of the
	// narrower cell's width) across which two cells are considered
	// swap candidates (default 8).
	WindowGap float64
}

// DetailedResult reports optimizer progress.
type DetailedResult struct {
	// SwapsApplied counts accepted cell swaps.
	SwapsApplied int
	// HPWLBefore/After bracket the optimization.
	HPWLBefore, HPWLAfter float64
}

// OptimizeDetailed improves a legalized placement by greedy same-row
// cell swapping — the classic detailed-placement move: two cells on
// the same row whose exchange (with re-centering in each other's span)
// reduces total wirelength are swapped. Legality is preserved exactly
// when the cells have equal widths and approximately otherwise (the
// wider cell must fit the vacated gap; such swaps are skipped).
// Wirelength deltas use the incremental evaluator, so each probe costs
// only the incident nets.
func OptimizeDetailed(d *netlist.Design, cfg DetailedConfig) DetailedResult {
	if cfg.Passes <= 0 {
		cfg.Passes = 3
	}
	if cfg.WindowGap <= 0 {
		cfg.WindowGap = 8
	}
	ev := netlist.NewIncrementalHPWL(d)
	res := DetailedResult{HPWLBefore: ev.Total()}

	// Group movable cells by row (y coordinate).
	rows := map[float64][]int{}
	for _, ci := range d.CellIndices() {
		if d.Nodes[ci].Fixed {
			continue
		}
		rows[d.Nodes[ci].Y] = append(rows[d.Nodes[ci].Y], ci)
	}
	rowKeys := make([]float64, 0, len(rows))
	for y := range rows {
		rowKeys = append(rowKeys, y)
	}
	sort.Float64s(rowKeys)

	for pass := 0; pass < cfg.Passes; pass++ {
		improved := false
		for _, y := range rowKeys {
			cells := rows[y]
			sort.Slice(cells, func(a, b int) bool { return d.Nodes[cells[a]].X < d.Nodes[cells[b]].X })
			for i := 0; i+1 < len(cells); i++ {
				a := cells[i]
				for j := i + 1; j < len(cells); j++ {
					b := cells[j]
					na, nb := &d.Nodes[a], &d.Nodes[b]
					gap := nb.X - (na.X + na.W)
					if gap > cfg.WindowGap*math.Min(na.W, nb.W) {
						break // too far; later cells are farther still
					}
					// Equal widths exchange spans exactly (safe at any
					// distance). Unequal widths rearrange within the
					// union of the two spans, which is only guaranteed
					// free when the cells abut (the gap between even
					// adjacent cells may host a macro blockage).
					if na.W != nb.W && (j != i+1 || gap > 1e-9) {
						continue
					}
					if trySwap(d, ev, a, b) {
						res.SwapsApplied++
						improved = true
						// Keep the x-sorted order array consistent.
						cells[i], cells[j] = cells[j], cells[i]
						break
					}
				}
			}
		}
		if !improved {
			break
		}
	}
	res.HPWLAfter = ev.Total()
	return res
}

// trySwap exchanges cells a and b in place (left edges swap, the
// narrower cell centers in the wider slot) when the move is legal and
// reduces wirelength. Returns true when applied.
func trySwap(d *netlist.Design, ev *netlist.IncrementalHPWL, a, b int) bool {
	na, nb := &d.Nodes[a], &d.Nodes[b]
	if na.Y != nb.Y {
		return false
	}
	ax, bx := na.X, nb.X
	wa, wb := na.W, nb.W
	if ax > bx {
		a, b = b, a
		na, nb = nb, na
		ax, bx = bx, ax
		wa, wb = wb, wa
	}
	// Equal widths: exact span exchange (safe at any distance).
	// Unequal widths (callers guarantee the cells abut): the pair
	// repacks inside the union of its old spans — b left-aligned at
	// a's corner, a immediately after b — so no other node can be
	// disturbed.
	newBx := ax
	newAx := bx
	if wa != wb {
		newAx = ax + wb
	}

	before := ev.Total()
	ev.MoveNode(a, newAx, na.Y)
	ev.MoveNode(b, newBx, nb.Y)
	if ev.Total() < before-1e-12 {
		return true
	}
	// Revert.
	ev.MoveNode(a, ax, na.Y)
	ev.MoveNode(b, bx, nb.Y)
	return false
}
