// Package faults provides deterministic fault injection behind the
// repository's existing interfaces, for exercising the recovery paths
// documented in DESIGN.md §"Fault model and recovery": evaluator
// panics and NaN activations into the MCTS (mcts.Evaluator), NaN
// wirelengths into the trainer (rl.WirelengthFunc), artificial
// evaluation latency for deadline tests, and write failures into the
// checkpoint path (io.Writer).
//
// Injection is counter-driven — "every Nth call" — so a fixed call
// sequence reproduces the same faults; there is no wall-clock or
// math/rand nondeterminism. Under the parallel search the *count* of
// injected faults is still deterministic even though *which* goroutine
// observes each fault depends on scheduling.
package faults

import (
	"errors"
	"io"
	"math"
	"sync/atomic"
	"time"

	"macroplace/internal/agent"
	"macroplace/internal/mcts"
	"macroplace/internal/rl"
)

// ErrInjected is the error returned by injected write failures.
var ErrInjected = errors.New("faults: injected write failure")

// Injector configures deterministic fault injection. The zero value
// injects nothing: every wrapper becomes a transparent pass-through,
// so tests can toggle single faults without changing their wiring.
// Each "Every" field counts that wrapper's calls from 1; the fault
// fires on every multiple. One Injector may back several wrappers at
// once — they share its counters.
type Injector struct {
	// PanicEvery makes every Nth evaluator call (Forward or
	// EvaluateBatch) panic instead of returning. PanicEvery=1 is a
	// dead evaluator: every call fails.
	PanicEvery int
	// NaNEvery poisons every Nth evaluator call's output with NaN
	// probabilities and value — the "NaN activations" fault.
	NaNEvery int
	// SlowEvery delays every Nth evaluator call by SlowDelay before it
	// runs, so context deadlines land mid-search deterministically.
	SlowEvery int
	SlowDelay time.Duration
	// WLNaNEvery makes every Nth wirelength-oracle call return NaN.
	WLNaNEvery int
	// WriteFailAt makes a wrapped Writer fail with ErrInjected from
	// its Nth Write call onward (0 keeps writes healthy, matching the
	// zero-value contract; 1 fails every call). Each failing call
	// still writes half of its buffer first — a torn write, the worst
	// case the atomic checkpoint path must survive. Buffered writers
	// (bufio) coalesce calls, so count flushes, not Save-level writes.
	WriteFailAt int

	evalCalls  atomic.Int64
	wlCalls    atomic.Int64
	writeCalls atomic.Int64
	panics     atomic.Int64
	nans       atomic.Int64
}

// EvalCalls reports how many evaluator calls the wrappers have seen.
func (inj *Injector) EvalCalls() int { return int(inj.evalCalls.Load()) }

// Panics reports how many evaluator panics were injected.
func (inj *Injector) Panics() int { return int(inj.panics.Load()) }

// NaNs reports how many NaN faults were injected (evaluator + oracle).
func (inj *Injector) NaNs() int { return int(inj.nans.Load()) }

// every reports whether the n-th call (1-based) triggers a fault with
// the given period.
func every(n int64, period int) bool {
	return period > 0 && n%int64(period) == 0
}

// Evaluator wraps ev with the injector's evaluator faults. The
// wrapped evaluator is as concurrency-safe as ev itself.
func (inj *Injector) Evaluator(ev mcts.Evaluator) mcts.Evaluator {
	return &faultyEvaluator{inj: inj, inner: ev}
}

type faultyEvaluator struct {
	inj   *Injector
	inner mcts.Evaluator
}

// act advances the call counter and applies slow/panic faults; it
// reports whether this call's output must be poisoned with NaNs.
func (e *faultyEvaluator) act() (poison bool) {
	n := e.inj.evalCalls.Add(1)
	if every(n, e.inj.SlowEvery) {
		time.Sleep(e.inj.SlowDelay)
	}
	if every(n, e.inj.PanicEvery) {
		e.inj.panics.Add(1)
		panic("faults: injected evaluator panic")
	}
	if every(n, e.inj.NaNEvery) {
		e.inj.nans.Add(1)
		return true
	}
	return false
}

func (e *faultyEvaluator) Forward(sp, sa []float64, t int) agent.Output {
	poison := e.act()
	out := e.inner.Forward(sp, sa, t)
	if poison {
		out = poisonOutput(out)
	}
	return out
}

func (e *faultyEvaluator) EvaluateBatch(in []agent.BatchInput) []agent.Output {
	poison := e.act()
	out := e.inner.EvaluateBatch(in)
	if poison {
		for i := range out {
			out[i] = poisonOutput(out[i])
		}
	}
	return out
}

// poisonOutput returns a copy of out with NaN value and probabilities.
// It copies the slice so the inner evaluator's buffers stay clean.
func poisonOutput(out agent.Output) agent.Output {
	nan := float32(math.NaN())
	probs := make([]float32, len(out.Probs))
	for i := range probs {
		probs[i] = nan
	}
	return agent.Output{Probs: probs, Value: nan}
}

// Wirelength wraps wl with the injector's oracle faults.
func (inj *Injector) Wirelength(wl rl.WirelengthFunc) rl.WirelengthFunc {
	return func(anchors []int) float64 {
		n := inj.wlCalls.Add(1)
		if every(n, inj.WLNaNEvery) {
			inj.nans.Add(1)
			return math.NaN()
		}
		return wl(anchors)
	}
}

// Writer wraps w with the injector's write faults: from the
// WriteFailAt-th call onward, every Write writes half of its buffer
// into w and then fails with ErrInjected — a torn write.
func (inj *Injector) Writer(w io.Writer) io.Writer {
	return &faultyWriter{inj: inj, inner: w}
}

type faultyWriter struct {
	inj   *Injector
	inner io.Writer
}

func (fw *faultyWriter) Write(p []byte) (int, error) {
	n := fw.inj.writeCalls.Add(1)
	if fw.inj.WriteFailAt > 0 && n >= int64(fw.inj.WriteFailAt) {
		written, _ := fw.inner.Write(p[:len(p)/2])
		return written, ErrInjected
	}
	return fw.inner.Write(p)
}
