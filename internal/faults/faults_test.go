package faults_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"macroplace/internal/agent"
	"macroplace/internal/atomicio"
	"macroplace/internal/faults"
	"macroplace/internal/geom"
	"macroplace/internal/grid"
	"macroplace/internal/mcts"
	"macroplace/internal/rl"
)

// cornerEnv builds a ζ=4 env with 3 unit groups and an oracle that
// strictly prefers anchors near the origin (mirrors the mcts tests).
func cornerEnv() (*grid.Env, rl.WirelengthFunc) {
	g := grid.New(geom.NewRect(0, 0, 4, 4), 4)
	shape := grid.Shape{GW: 1, GH: 1, Util: []float64{0.6}, W: 1, H: 1, Area: 0.6}
	env := grid.NewEnv(g, []grid.Shape{shape, shape, shape}, nil)
	wl := func(anchors []int) float64 {
		var total float64
		for _, a := range anchors {
			gx, gy := g.Coords(a)
			total += float64(gx + gy)
		}
		return total
	}
	return env, wl
}

func testScaler() rl.Scaler {
	return rl.Calibrate(rl.Shaped, []float64{0, 6, 12}, 0.75)
}

func testAgent(seed int64) *agent.Agent {
	return agent.New(agent.Config{Zeta: 4, Channels: 4, ResBlocks: 1, MaxSteps: 4, Seed: seed})
}

// requireLegalComplete asserts the allocation covers every group with
// in-bounds anchors and that the reported wirelength matches them.
func requireLegalComplete(t *testing.T, env *grid.Env, wl rl.WirelengthFunc, res mcts.Result) {
	t.Helper()
	if len(res.Anchors) != env.NumSteps() {
		t.Fatalf("anchors = %v, want %d groups", res.Anchors, env.NumSteps())
	}
	for _, a := range res.Anchors {
		if a < 0 || a >= env.G.NumCells() {
			t.Fatalf("illegal anchor %d", a)
		}
	}
	if math.IsNaN(res.Wirelength) || math.IsInf(res.Wirelength, 0) {
		t.Fatalf("non-finite wirelength %v", res.Wirelength)
	}
	if got := wl(res.Anchors); res.Wirelength != got {
		t.Fatalf("reported wirelength %v does not match anchors (%v)", res.Wirelength, got)
	}
}

func TestZeroInjectorIsTransparent(t *testing.T) {
	run := func(wrap bool) mcts.Result {
		env, wl := cornerEnv()
		var ev mcts.Evaluator = testAgent(11)
		inj := &faults.Injector{}
		if wrap {
			ev = inj.Evaluator(ev)
			wl = inj.Wirelength(wl)
		}
		s := mcts.New(mcts.Config{Gamma: 8, Seed: 1, Workers: 1}, ev, wl, testScaler())
		return s.Run(env)
	}
	plain, wrapped := run(false), run(true)
	if plain.Wirelength != wrapped.Wirelength || plain.Explorations != wrapped.Explorations {
		t.Fatalf("zero injector changed the search: %+v vs %+v", plain, wrapped)
	}
}

// TestDeadlineMidSearchReturnsLegalBestSoFar pins documented recovery
// #1: a search whose deadline expires mid-run still returns a
// complete legal allocation, marked Interrupted.
func TestDeadlineMidSearchReturnsLegalBestSoFar(t *testing.T) {
	for _, workers := range []int{1, 4} {
		inj := &faults.Injector{SlowEvery: 1, SlowDelay: 5 * time.Millisecond}
		env, wl := cornerEnv()
		s := mcts.New(mcts.Config{Gamma: 50, Seed: 2, Workers: workers},
			inj.Evaluator(testAgent(11)), wl, testScaler())
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
		res := s.RunContext(ctx, env)
		cancel()
		requireLegalComplete(t, env, wl, res)
		if !res.Interrupted {
			t.Errorf("workers=%d: search with an expired deadline must report Interrupted", workers)
		}
	}
}

// TestPanickingWorkersKeepTreeConsistent pins documented recovery #2:
// injected evaluator panics are recovered, counted, and never corrupt
// the shared tree — the search still commits a legal allocation.
// go test -race makes the "never corrupt" part load-bearing.
func TestPanickingWorkersKeepTreeConsistent(t *testing.T) {
	inj := &faults.Injector{PanicEvery: 3}
	env, wl := cornerEnv()
	s := mcts.New(mcts.Config{Gamma: 24, Seed: 3, Workers: 4},
		inj.Evaluator(testAgent(11)), wl, testScaler())
	res := s.Run(env)
	requireLegalComplete(t, env, wl, res)
	if inj.Panics() == 0 {
		t.Fatal("injector never fired — the test exercised nothing")
	}
	if res.WorkerPanics == 0 {
		t.Error("recovered panics must be reported in Result.WorkerPanics")
	}
	if res.Explorations <= 0 {
		t.Error("a 2/3-healthy evaluator must still complete explorations")
	}
}

// TestDeadEvaluatorStillCommitsLegalAllocation is the extreme of
// recovery #2: every evaluator call panics, all workers retire, and
// the commit fallback still produces a complete legal allocation.
func TestDeadEvaluatorStillCommitsLegalAllocation(t *testing.T) {
	inj := &faults.Injector{PanicEvery: 1}
	env, wl := cornerEnv()
	s := mcts.New(mcts.Config{Gamma: 8, Seed: 4, Workers: 4},
		inj.Evaluator(testAgent(11)), wl, testScaler())
	res := s.Run(env)
	requireLegalComplete(t, env, wl, res)
	if res.WorkerPanics == 0 {
		t.Error("a dead evaluator must be visible in Result.WorkerPanics")
	}
}

// TestNaNActivationsDoNotPoisonSearch: NaN network outputs are
// clamped by the search (priors renormalised, values floored) and the
// result stays finite and legal at both worker counts.
func TestNaNActivationsDoNotPoisonSearch(t *testing.T) {
	for _, workers := range []int{1, 3} {
		inj := &faults.Injector{NaNEvery: 2}
		env, wl := cornerEnv()
		s := mcts.New(mcts.Config{Gamma: 16, Seed: 5, Workers: workers},
			inj.Evaluator(testAgent(11)), wl, testScaler())
		res := s.Run(env)
		requireLegalComplete(t, env, wl, res)
		if inj.NaNs() == 0 {
			t.Fatalf("workers=%d: injector never fired", workers)
		}
	}
}

// TestTornCheckpointWriteKeepsPreviousGeneration pins documented
// recovery #3: a write killed mid-checkpoint (here: a torn first
// write) leaves the previous generation loadable and no stray staging
// files behind.
func TestTornCheckpointWriteKeepsPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "agent.ckpt")
	gen1 := testAgent(1)
	if err := gen1.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	gen2 := testAgent(2)
	inj := &faults.Injector{WriteFailAt: 1}
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		return gen2.Save(inj.Writer(w))
	})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("injected write failure not propagated: %v", err)
	}

	loaded, err := agent.LoadFile(path)
	if err != nil {
		t.Fatalf("previous generation unreadable after torn write: %v", err)
	}
	want, got := gen1.Params()[0].W, loaded.Params()[0].W
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("weight %d: loaded %v, want gen1's %v", i, got[i], want[i])
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("staging file leaked: %v", entries)
	}
}

// TestTruncatedCheckpointRejected: a file cut mid-payload (what a
// non-atomic writer would leave after a crash) must fail to load, not
// yield a half-initialised agent.
func TestTruncatedCheckpointRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := testAgent(3).Save(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	if err := os.WriteFile(path, buf.Bytes()[:buf.Len()/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := agent.LoadFile(path); err == nil {
		t.Fatal("truncated checkpoint loaded without error")
	}
}

// TestTrainerSurvivesInjectedNaNWirelengths pins documented recovery
// #4: NaN oracle results are skipped before they reach an update
// batch, the network stays finite, and at most one weight restore is
// needed.
func TestTrainerSurvivesInjectedNaNWirelengths(t *testing.T) {
	env, wl := cornerEnv()
	inj := &faults.Injector{WLNaNEvery: 3}
	ag := testAgent(7)
	tr := rl.NewTrainer(rl.Config{
		Episodes: 12, UpdateEvery: 4, CalibrationEpisodes: 1, Seed: 9,
	}, ag, env, inj.Wirelength(wl))
	tr.Scaler = testScaler() // preset so calibration cannot be poisoned
	tr.Run()

	if len(tr.History) != 12 {
		t.Fatalf("history has %d episodes, want 12", len(tr.History))
	}
	if tr.Faults.SkippedEpisodes == 0 {
		t.Fatal("injector never fired — no episode was skipped")
	}
	if tr.Faults.Restores > 1 {
		t.Errorf("recovery took %d restores, want at most 1", tr.Faults.Restores)
	}
	for _, p := range ag.Params() {
		for i, v := range p.W {
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				t.Fatalf("parameter %s[%d] non-finite after training: %v", p.Name, i, v)
			}
		}
	}
}
