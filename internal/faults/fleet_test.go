package faults

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestFleetInjectorZeroValuePassesThrough(t *testing.T) {
	inj := &FleetInjector{}
	h := inj.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || string(body) != "ok" {
			t.Fatalf("request %d: status %d body %q", i, resp.StatusCode, body)
		}
	}
	for i := 0; i < 5; i++ {
		if !inj.BeatAllowed() {
			t.Fatalf("beat %d dropped by zero-value injector", i+1)
		}
	}
}

func TestFleetInjectorFail5xxFirst(t *testing.T) {
	inj := &FleetInjector{Fail5xxFirst: 2}
	h := inj.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	want := []int{503, 503, 200, 200}
	for i, code := range want {
		resp, err := http.Get(srv.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != code {
			t.Fatalf("request %d: status %d, want %d", i+1, resp.StatusCode, code)
		}
	}
}

func TestFleetInjectorHangFirst(t *testing.T) {
	inj := &FleetInjector{HangFirst: 1}
	h := inj.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/", nil)
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("first request should hang past the client deadline")
	}
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("second request: status %d, want 200", resp.StatusCode)
	}
}

func TestFleetInjectorDropBeatsAfter(t *testing.T) {
	inj := &FleetInjector{DropBeatsAfter: 3}
	got := []bool{inj.BeatAllowed(), inj.BeatAllowed(), inj.BeatAllowed(), inj.BeatAllowed()}
	want := []bool{true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("beat %d allowed=%v, want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
}

func TestFleetInjectorCorruptCheckpoints(t *testing.T) {
	const payload = `{"committed":[1,2,3]}`
	inj := &FleetInjector{CorruptCheckpoints: true}
	h := inj.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/jobs/job-000001/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) == payload {
		t.Fatal("checkpoint body not corrupted")
	}
	if len(body) != len(payload) {
		t.Fatalf("corruption changed length: %d != %d", len(body), len(payload))
	}

	// Non-checkpoint paths stay clean.
	resp, err = http.Get(srv.URL + "/v1/jobs/job-000001")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != payload {
		t.Fatalf("non-checkpoint body corrupted: %q", body)
	}
}

// TestFleetInjectorScriptedDeath pins the two arming conditions: death
// fires only once BOTH the commit count and the checkpoint-fetch count
// reach their thresholds, and it fires exactly once.
func TestFleetInjectorScriptedDeath(t *testing.T) {
	deaths := 0
	inj := &FleetInjector{DieAtCommit: 2, MinCheckpointFetches: 1, OnDie: func() { deaths++ }}
	h := inj.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "{}")
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	inj.CommitObserved()
	inj.CommitObserved()
	if inj.Died() {
		t.Fatal("died before any checkpoint fetch")
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/x/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if !inj.Died() {
		t.Fatal("fetch after threshold commits should fire death")
	}
	inj.CommitObserved()
	if deaths != 1 {
		t.Fatalf("OnDie fired %d times, want exactly 1", deaths)
	}
	if inj.BeatAllowed() {
		t.Fatal("dead worker must not beat")
	}
	if inj.Commits() != 3 {
		t.Fatalf("commits = %d, want 3", inj.Commits())
	}
}

func TestFleetInjectorDeathWithoutFetchPrecondition(t *testing.T) {
	deaths := 0
	inj := &FleetInjector{DieAtCommit: 1, OnDie: func() { deaths++ }}
	inj.CommitObserved()
	if deaths != 1 || !inj.Died() {
		t.Fatalf("MinCheckpointFetches=0 should arm on commits alone (deaths=%d)", deaths)
	}
	if !strings.Contains("x/checkpoint", "/checkpoint") {
		t.Fatal("sanity")
	}
}
