package faults

import (
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
)

// FleetInjector injects deterministic failures into a placement
// worker's HTTP surface and heartbeat loop, for exercising the fleet
// coordinator's recovery paths: health-state demotion on dropped
// heartbeats, RPC retry on 5xx, checkpoint-corruption fallback, and
// mid-job worker death at a scripted search commit. Like Injector, the
// zero value injects nothing and all faults are counter-driven — the
// same request/commit sequence reproduces the same failures.
//
// It is generic over net/http so internal/faults stays independent of
// internal/serve: wrap any worker handler with Middleware and feed
// commit observations in with CommitObserved.
type FleetInjector struct {
	// DropBeatsAfter makes BeatAllowed return false from the Nth call
	// onward (1 drops every heartbeat; 0 keeps them flowing). The
	// worker's heartbeat loop consults it before each POST, simulating
	// a partition between worker and coordinator.
	DropBeatsAfter int
	// Fail5xxFirst makes the middleware answer the first N requests
	// with 503 before letting traffic through — the transient-error
	// window the coordinator's retry/backoff must ride out.
	Fail5xxFirst int
	// HangFirst makes the middleware hold the first N requests open
	// until the client gives up — the per-RPC timeout path. Hung
	// requests never reach the inner handler.
	HangFirst int
	// CorruptCheckpoints mangles the body of every response whose
	// request path ends in "/checkpoint", so a migration sees a fetched
	// checkpoint that no longer parses and must fall back to a
	// restart-from-scratch.
	CorruptCheckpoints bool
	// DieAtCommit arms worker death: once CommitObserved has been
	// called at least DieAtCommit times AND the checkpoint endpoint has
	// fully served (200, flushed to the wire) at least
	// MinCheckpointFetches responses, OnDie fires (exactly once). The
	// fetch precondition keeps the scripted death from outrunning the
	// coordinator's checkpoint mirror — the test stays deterministic
	// without sleeps. 0 disarms.
	DieAtCommit          int
	MinCheckpointFetches int
	// OnDie is the scripted kill switch — tests close the worker's
	// listener and gate its heartbeats here.
	OnDie func()

	beats    atomic.Int64
	requests atomic.Int64
	commits  atomic.Int64
	fetches  atomic.Int64
	died     atomic.Bool
	dieOnce  sync.Once
}

// BeatAllowed reports whether the next heartbeat may be sent, counting
// calls from 1. After the injector has fired OnDie the answer is
// always no — a dead worker does not beat.
func (inj *FleetInjector) BeatAllowed() bool {
	if inj.died.Load() {
		return false
	}
	n := inj.beats.Add(1)
	return inj.DropBeatsAfter <= 0 || n < int64(inj.DropBeatsAfter)
}

// CommitObserved records one search commit on the faulted worker and
// fires the scripted death when both arming conditions hold. Call it
// from the worker's progress-event path.
func (inj *FleetInjector) CommitObserved() {
	inj.commits.Add(1)
	inj.maybeDie()
}

// Commits reports how many commits have been observed.
func (inj *FleetInjector) Commits() int { return int(inj.commits.Load()) }

// Died reports whether the scripted death has fired.
func (inj *FleetInjector) Died() bool { return inj.died.Load() }

func (inj *FleetInjector) maybeDie() {
	if inj.DieAtCommit <= 0 || inj.died.Load() {
		return
	}
	if inj.commits.Load() < int64(inj.DieAtCommit) {
		return
	}
	if inj.fetches.Load() < int64(inj.MinCheckpointFetches) {
		return
	}
	inj.dieOnce.Do(func() {
		inj.died.Store(true)
		if inj.OnDie != nil {
			inj.OnDie()
		}
	})
}

// Middleware wraps a worker's HTTP handler with the injector's
// request-level faults. Requests are counted from 1 across all paths.
func (inj *FleetInjector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := inj.requests.Add(1)
		if n <= int64(inj.HangFirst) {
			// Hold until the client's per-RPC timeout (or disconnect)
			// frees us; the inner handler never sees the request.
			<-r.Context().Done()
			return
		}
		if n <= int64(inj.HangFirst)+int64(inj.Fail5xxFirst) {
			http.Error(w, "faults: injected 503", http.StatusServiceUnavailable)
			return
		}
		if strings.HasSuffix(r.URL.Path, "/checkpoint") {
			rec := &statusRecorder{inner: w}
			defer func() {
				// Flush before (possibly) dying: OnDie typically closes
				// the server, and the fetch this death was armed on must
				// reach the coordinator intact — otherwise the "mirror is
				// ahead of the kill" guarantee silently breaks.
				if f, ok := w.(http.Flusher); ok {
					f.Flush()
				}
				if rec.status() == http.StatusOK {
					inj.fetches.Add(1)
				}
				inj.maybeDie()
			}()
			if inj.CorruptCheckpoints {
				next.ServeHTTP(&corruptingWriter{inner: rec}, r)
			} else {
				next.ServeHTTP(rec, r)
			}
			return
		}
		next.ServeHTTP(w, r)
	})
}

// statusRecorder remembers the response code so only successful
// checkpoint fetches count toward the death-arming precondition.
type statusRecorder struct {
	inner http.ResponseWriter
	code  int
}

func (sr *statusRecorder) Header() http.Header { return sr.inner.Header() }

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.inner.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.code == 0 {
		sr.code = http.StatusOK
	}
	return sr.inner.Write(p)
}

func (sr *statusRecorder) status() int {
	if sr.code == 0 {
		return http.StatusOK
	}
	return sr.code
}

// corruptingWriter flips bytes in everything written through it, so a
// well-formed JSON checkpoint arrives unparsable but the same length —
// the bit-rot case, distinct from truncation or a 404.
type corruptingWriter struct {
	inner http.ResponseWriter
}

func (cw *corruptingWriter) Header() http.Header { return cw.inner.Header() }

func (cw *corruptingWriter) WriteHeader(code int) { cw.inner.WriteHeader(code) }

func (cw *corruptingWriter) Write(p []byte) (int, error) {
	mangled := make([]byte, len(p))
	for i, b := range p {
		mangled[i] = b ^ 0xa5
	}
	n, err := cw.inner.Write(mangled)
	return n, err
}
