package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := reg.Gauge("test_level", "level")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
	// Get-or-create must hand back the same instance.
	if reg.Counter("test_ops_total", "ops") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_thing", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name did not panic")
		}
	}()
	reg.Gauge("test_thing", "")
}

func TestInvalidMetricNamePanics(t *testing.T) {
	for _, bad := range []string{"", "0leading", "has space", "has-dash", "ünïcode"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			NewRegistry().Counter(bad, "")
		}()
	}
}

// TestHistogramBucketEdges pins the Prometheus `le` semantics: an
// observation exactly on an upper bound lands in that bucket, the
// first value above it lands in the next.
func TestHistogramBucketEdges(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_sizes", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.000001, 2, 4, 4.5, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 2} // <=1: {0.5,1}; <=2: {1.000001,2}; <=4: {4}; +Inf: {4.5,100}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 0.5+1+1.000001+2+4+4.5+100 {
		t.Fatalf("sum = %v", h.Sum())
	}
}

func TestHistogramNonAscendingBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewRegistry().Histogram("test_bad", "", []float64{1, 1})
}

// TestPrometheusRendering checks the exposition format: HELP/TYPE
// lines, cumulative histogram buckets with an +Inf bucket, span
// counter pairs, lexical ordering, and HELP escaping.
func TestPrometheusRendering(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_b_total", "line one\nline two with back\\slash").Add(7)
	reg.Gauge("test_a_level", "").Set(0.25)
	h := reg.Histogram("test_c_sizes", "sizes", []float64{1, 2})
	h.Observe(1)
	h.Observe(5)
	sp := reg.Span("test_d_phase", "phase")
	sp.Observe(1500 * time.Millisecond)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# TYPE test_a_level gauge
test_a_level 0.25
# HELP test_b_total line one\nline two with back\\slash
# TYPE test_b_total counter
test_b_total 7
# HELP test_c_sizes sizes
# TYPE test_c_sizes histogram
test_c_sizes_bucket{le="1"} 1
test_c_sizes_bucket{le="2"} 1
test_c_sizes_bucket{le="+Inf"} 2
test_c_sizes_sum 6
test_c_sizes_count 2
# HELP test_d_phase_seconds_total phase
# TYPE test_d_phase_seconds_total counter
test_d_phase_seconds_total 1.5
# TYPE test_d_phase_invocations_total counter
test_d_phase_invocations_total 1
`
	if got != want {
		t.Fatalf("rendered exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestEscapeLabel(t *testing.T) {
	got := EscapeLabel("a\"b\\c\nd")
	want := `a\"b\\c\nd`
	if got != want {
		t.Fatalf("EscapeLabel = %q, want %q", got, want)
	}
}

// TestConcurrentIncAndObserve hammers one counter, gauge, and
// histogram from many goroutines (run with -race) and checks the
// totals are exact — no torn or lost increments.
func TestConcurrentIncAndObserve(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_conc_total", "")
	h := reg.Histogram("test_conc_sizes", "", []float64{4, 16})
	g := reg.Gauge("test_conc_sum", "")

	const goroutines, per = 16, 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
				h.Observe(float64(k % 32))
				g.Add(1)
			}
		}(i)
	}
	// A concurrent renderer must never trip the race detector.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			_ = reg.WritePrometheus(&b)
		}
	}()
	wg.Wait()

	const total = goroutines * per
	if c.Value() != total {
		t.Fatalf("counter = %d, want %d", c.Value(), total)
	}
	if h.Count() != total {
		t.Fatalf("histogram count = %d, want %d", h.Count(), total)
	}
	var bucketSum uint64
	for _, b := range h.BucketCounts() {
		bucketSum += b
	}
	if bucketSum != total {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, total)
	}
	if g.Value() != float64(total) {
		t.Fatalf("gauge = %v, want %d", g.Value(), total)
	}
}

// TestHotPathOpsDoNotAllocate pins the zero-allocation contract the
// search instrumentation depends on: Inc/Add/Set/Observe must not
// allocate, or the PR 3 allocs/op gate would break with telemetry on.
func TestHotPathOpsDoNotAllocate(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_alloc_total", "")
	g := reg.Gauge("test_alloc_level", "")
	h := reg.Histogram("test_alloc_sizes", "", []float64{1, 2, 4, 8})
	sp := reg.Span("test_alloc_phase", "")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(3)
		sp.Observe(time.Microsecond)
	}); n != 0 {
		t.Fatalf("hot-path metric ops allocate %v times per run, want 0", n)
	}
}
