package obs

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("macroplace_test_ops_total", "ops").Add(42)
	reg.Gauge("macroplace_test_residual", "residual").Set(0.5)
	h := reg.Histogram("macroplace_test_batch", "batch", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)
	reg.Span("macroplace_test_phase", "phase").Observe(1500 * time.Millisecond)
	return reg
}

// TestRunSummaryGolden pins the run-summary JSON schema byte-for-byte:
// field names, nesting, map ordering, indentation, and the trailing
// newline. Downstream tooling parses these files; any change must be
// deliberate (bump SummarySchemaVersion and regenerate with -update).
func TestRunSummaryGolden(t *testing.T) {
	reg := goldenRegistry()
	data, err := MarshalSummary(reg.Snapshot(map[string]any{
		"design":      "ibm01",
		"interrupted": false,
	}))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "summary_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/obs/ -run Golden -update)", err)
	}
	if string(data) != string(want) {
		t.Fatalf("run-summary schema drifted from golden:\n--- got ---\n%s--- want ---\n%s", data, want)
	}
}

// TestSummaryRoundTrip checks the summary is valid JSON carrying the
// schema version and every registered metric.
func TestSummaryRoundTrip(t *testing.T) {
	reg := goldenRegistry()
	data, err := MarshalSummary(reg.Snapshot(nil))
	if err != nil {
		t.Fatal(err)
	}
	var sum Summary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Schema != SummarySchemaVersion {
		t.Fatalf("schema = %d, want %d", sum.Schema, SummarySchemaVersion)
	}
	if sum.Counters["macroplace_test_ops_total"] != 42 {
		t.Fatalf("counters = %v", sum.Counters)
	}
	h, ok := sum.Histograms["macroplace_test_batch"]
	if !ok || h.Count != 3 || h.Sum != 13 {
		t.Fatalf("histogram snapshot = %+v", h)
	}
	if len(h.Buckets) != len(h.Bounds)+1 {
		t.Fatalf("buckets/bounds mismatch: %+v", h)
	}
	sp, ok := sum.Spans["macroplace_test_phase"]
	if !ok || sp.Invocations != 1 || sp.Seconds != 1.5 {
		t.Fatalf("span snapshot = %+v", sp)
	}
}

// TestWriteSummaryAtomic checks WriteSummary lands a complete document
// at the target path.
func TestWriteSummaryAtomic(t *testing.T) {
	reg := goldenRegistry()
	path := filepath.Join(t.TempDir(), "nested", "summary.json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteSummary(path, map[string]any{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sum Summary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("written summary is not valid JSON: %v", err)
	}
	if sum.Run["k"] != "v" {
		t.Fatalf("run fields = %v", sum.Run)
	}
}
