package obs

import (
	"encoding/json"
	"fmt"

	"macroplace/internal/atomicio"
)

// SummarySchemaVersion identifies the run-summary JSON layout; bump it
// on any breaking change so downstream tooling can dispatch.
const SummarySchemaVersion = 1

// Summary is the JSON run artifact: a point-in-time snapshot of every
// registered metric, plus run-level fields the CLI supplies (design
// name, final HPWL, interruption status, …). Map keys are metric
// names, so encoding/json renders them sorted and the document is
// byte-deterministic for a given registry state.
type Summary struct {
	Schema     int                          `json:"schema"`
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      map[string]SpanSnapshot      `json:"spans,omitempty"`
	Run        map[string]any               `json:"run,omitempty"`
}

// HistogramSnapshot is one histogram's state in the summary.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	// Bounds are the upper bucket bounds (excluding +Inf); Buckets are
	// the matching non-cumulative counts with the +Inf bucket last, so
	// len(Buckets) == len(Bounds)+1.
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
}

// SpanSnapshot is one phase span's state in the summary.
type SpanSnapshot struct {
	Invocations uint64  `json:"invocations"`
	Seconds     float64 `json:"seconds"`
}

// Snapshot captures the registry into a Summary with the given
// run-level fields (may be nil).
func (r *Registry) Snapshot(run map[string]any) Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	sum := Summary{Schema: SummarySchemaVersion, Run: run}
	for name, e := range r.byName {
		switch e.kind {
		case kindCounter:
			if sum.Counters == nil {
				sum.Counters = make(map[string]uint64)
			}
			sum.Counters[name] = e.c.Value()
		case kindGauge:
			if sum.Gauges == nil {
				sum.Gauges = make(map[string]float64)
			}
			sum.Gauges[name] = e.g.Value()
		case kindGaugeFunc:
			if sum.Gauges == nil {
				sum.Gauges = make(map[string]float64)
			}
			sum.Gauges[name] = e.gf.Value()
		case kindHistogram:
			if sum.Histograms == nil {
				sum.Histograms = make(map[string]HistogramSnapshot)
			}
			sum.Histograms[name] = HistogramSnapshot{
				Count:   e.h.Count(),
				Sum:     e.h.Sum(),
				Bounds:  e.h.Bounds(),
				Buckets: e.h.BucketCounts(),
			}
		case kindSpan:
			if sum.Spans == nil {
				sum.Spans = make(map[string]SpanSnapshot)
			}
			sum.Spans[name] = SpanSnapshot{Invocations: e.s.Count(), Seconds: e.s.Seconds()}
		}
	}
	return sum
}

// MarshalSummary renders a summary as indented JSON with a trailing
// newline (the byte form WriteSummary persists and the golden test
// pins).
func MarshalSummary(sum Summary) ([]byte, error) {
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("obs: marshal summary: %w", err)
	}
	return append(data, '\n'), nil
}

// WriteSummary atomically writes the registry snapshot (plus run-level
// fields) to path: the file always holds either the previous complete
// summary or the new one, even if the process dies mid-write — the
// same crash-safety contract as every other artifact in this
// repository.
func (r *Registry) WriteSummary(path string, run map[string]any) error {
	data, err := MarshalSummary(r.Snapshot(run))
	if err != nil {
		return err
	}
	return atomicio.WriteFileBytes(path, data)
}

// WriteSummary writes the Default registry's snapshot to path.
func WriteSummary(path string, run map[string]any) error {
	return Default.WriteSummary(path, run)
}
