package obs

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandlerMetrics checks the /metrics endpoint serves exactly what
// WritePrometheus renders — content-type, escaping and all — so a
// scrape round-trips the registry byte-for-byte.
func TestHandlerMetrics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("handler_test_total", "help with \\backslash and\nnewline")
	c.Add(3)
	g := reg.Gauge("handler_test_gauge", "plain help")
	g.Set(2.5)

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content-type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := reg.WritePrometheus(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("scrape body differs from WritePrometheus:\ngot:\n%s\nwant:\n%s", body, want.Bytes())
	}
	// The escaped help must be one exposition line: raw newlines in
	// help strings would corrupt the scrape.
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "# HELP handler_test_total") {
			if !strings.Contains(line, `\n`) {
				t.Errorf("HELP line lost the escaped newline: %q", line)
			}
		}
	}
	if !strings.Contains(string(body), "handler_test_total 3") {
		t.Errorf("scrape missing counter sample:\n%s", body)
	}
}

func TestHandlerHealthz(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "ok\n" {
		t.Errorf("body %q, want ok", body)
	}
}

func TestHandlerPprofIndex(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index missing profiles:\n%s", body)
	}
}
