package obs

import (
	"strings"
	"testing"
)

func TestGaugeFuncRendersAndSnapshots(t *testing.T) {
	r := NewRegistry()
	v := 3.0
	r.GaugeFunc("macroplace_test_live", "live things", func() float64 { return v })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# TYPE macroplace_test_live gauge\nmacroplace_test_live 3\n") {
		t.Fatalf("exposition missing callback gauge:\n%s", sb.String())
	}

	v = 7.5
	sum := r.Snapshot(nil)
	if got := sum.Gauges["macroplace_test_live"]; got != 7.5 {
		t.Fatalf("snapshot gauge = %v, want 7.5 (callback must be re-evaluated)", got)
	}
}

// TestGaugeFuncLatestWins pins the re-registration semantics: a second
// registration under the same name rebinds the callback rather than
// keeping the first closure alive — a re-created coordinator must
// report its own state, not its predecessor's.
func TestGaugeFuncLatestWins(t *testing.T) {
	r := NewRegistry()
	g1 := r.GaugeFunc("macroplace_test_rebind", "", func() float64 { return 1 })
	g2 := r.GaugeFunc("macroplace_test_rebind", "", func() float64 { return 2 })
	if g1 != g2 {
		t.Fatal("same name must return the same series")
	}
	if got := g1.Value(); got != 2 {
		t.Fatalf("Value() = %v, want the latest callback's 2", got)
	}
}

func TestGaugeFuncNilCallbackReportsZero(t *testing.T) {
	r := NewRegistry()
	g := r.GaugeFunc("macroplace_test_nilfn", "", nil)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil callback Value() = %v, want 0", got)
	}
}

func TestGaugeFuncKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("macroplace_test_conflict", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a GaugeFunc over a Counter must panic")
		}
	}()
	r.GaugeFunc("macroplace_test_conflict", "", func() float64 { return 0 })
}
