// Package obs is the stdlib-only telemetry layer of the placement
// service: atomic counters, gauges, and histograms for the hot paths,
// named phase spans (wall time + invocation counts) for the pipeline
// stages, and a registry that renders everything in the Prometheus
// text exposition format.
//
// Design constraints, in order:
//
//   - Zero allocation on the instrumented paths. Every metric is a
//     fixed set of atomic words created once at package init; Inc /
//     Add / Set / Observe are a handful of atomic operations with no
//     locking, no maps, and no interface boxing. The MCTS hot loop
//     (tens of thousands of explorations per run) pays one atomic add
//     per event, which is invisible next to a network evaluation — and
//     crucially keeps the PR 3 allocs/op gate intact with telemetry
//     always on.
//   - No behavioural coupling. Metrics never feed back into the code
//     they observe, so the Workers=1 search stays bit-identical to the
//     uninstrumented goldens.
//   - stdlib only. Rendering is plain text (Prometheus exposition
//     format v0.0.4); the HTTP layer in http.go uses net/http and
//     net/http/pprof; the run summary in summary.go uses
//     encoding/json via internal/atomicio.
//
// Naming follows the Prometheus conventions: every series is
// `macroplace_<package>_<what>[_<unit>]` with `_total` on counters.
// DESIGN.md §9 holds the full metric catalogue.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is
// unusable; obtain one from a Registry (or the package-level NewCounter)
// so it renders on /metrics.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down (last-observed residuals,
// loss values, pool sizes).
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by v (CAS loop; gauges are not hot-path).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeFunc is a gauge whose value is computed by a callback at render
// and snapshot time, for values that already live elsewhere (the fleet
// registry's live-worker count, heartbeat lag) — polling them into a
// stored Gauge would add a ticker and a staleness window for nothing.
// The callback must be safe for concurrent use, must not block, and
// must not touch the registry it is registered on (it is evaluated
// under the registry lock during render/snapshot).
type GaugeFunc struct {
	name, help string
	mu         sync.Mutex
	fn         func() float64
}

// Value evaluates the callback. A GaugeFunc whose callback was never
// set (or was cleared) reports 0.
func (g *GaugeFunc) Value() float64 {
	g.mu.Lock()
	fn := g.fn
	g.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// set installs the callback, replacing any previous one (latest wins —
// a re-created component re-binds the series to its own state instead
// of leaving the old component's closure pinned).
func (g *GaugeFunc) set(fn func() float64) {
	g.mu.Lock()
	g.fn = fn
	g.mu.Unlock()
}

// Histogram counts observations into fixed cumulative buckets
// (Prometheus histogram semantics: bucket i counts observations
// <= Bounds[i], plus an implicit +Inf bucket).
type Histogram struct {
	name, help string
	bounds     []float64
	buckets    []atomic.Uint64 // len(bounds)+1; last is +Inf
	count      atomic.Uint64
	sumBits    atomic.Uint64
}

// Observe records one value: one atomic add for the bucket, one for
// the count, one CAS for the sum.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCounts returns the non-cumulative per-bucket counts (last
// entry is the +Inf bucket). For tests and the run summary.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Bounds returns the histogram's upper bucket bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Span accumulates wall time and invocation counts of a named phase.
// Instrument either with Observe (zero-allocation) or the
// closure-returning Start (convenient for defer; one small allocation,
// fine for per-stage granularity).
type Span struct {
	name, help string
	count      atomic.Uint64
	nanos      atomic.Int64
}

// Observe records one completed invocation of duration d.
func (s *Span) Observe(d time.Duration) {
	s.count.Add(1)
	s.nanos.Add(int64(d))
}

// Start begins timing and returns the function that stops it:
//
//	defer span.Start()()
func (s *Span) Start() func() {
	t0 := time.Now()
	return func() { s.Observe(time.Since(t0)) }
}

// Count returns the number of completed invocations.
func (s *Span) Count() uint64 { return s.count.Load() }

// Seconds returns the accumulated wall time in seconds.
func (s *Span) Seconds() float64 { return float64(s.nanos.Load()) / 1e9 }

// metricKind discriminates the registry's entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindSpan
	kindGaugeFunc
)

// entry is one registered metric.
type entry struct {
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
	s    *Span
	gf   *GaugeFunc
}

// Registry holds named metrics and renders them. Registration is
// get-or-create by name (so package-level metric vars and tests can
// share one registry); a name registered twice with different types
// panics — that is a programming error, not a runtime condition.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// Default is the process-wide registry every package-level metric
// registers on; the CLIs expose it over HTTP and in the run summary.
var Default = NewRegistry()

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (r *Registry) lookup(name string, kind metricKind) *entry {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered with conflicting types", name))
		}
		return e
	}
	e := &entry{kind: kind}
	r.byName[name] = e
	return e
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.lookup(name, kindCounter)
	if e.c == nil {
		e.c = &Counter{name: name, help: help}
	}
	return e.c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.lookup(name, kindGauge)
	if e.g == nil {
		e.g = &Gauge{name: name, help: help}
	}
	return e.g
}

// Histogram returns the histogram registered under name, creating it
// with the given upper bucket bounds (ascending; +Inf is implicit) on
// first use. Later calls ignore bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	e := r.lookup(name, kindHistogram)
	if e.h == nil {
		e.h = &Histogram{
			name:    name,
			help:    help,
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1),
		}
	}
	return e.h
}

// GaugeFunc registers fn as a callback gauge under name, creating the
// series on first use. Unlike the stored metrics, re-registration
// replaces the callback (latest wins) — see GaugeFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	e := r.lookup(name, kindGaugeFunc)
	if e.gf == nil {
		e.gf = &GaugeFunc{name: name, help: help}
	}
	e.gf.set(fn)
	return e.gf
}

// Span returns the phase span registered under name, creating it on
// first use.
func (r *Registry) Span(name, help string) *Span {
	e := r.lookup(name, kindSpan)
	if e.s == nil {
		e.s = &Span{name: name, help: help}
	}
	return e.s
}

// NewCounter registers a counter on the Default registry.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// NewGauge registers a gauge on the Default registry.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// NewHistogram registers a histogram on the Default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return Default.Histogram(name, help, bounds)
}

// NewGaugeFunc registers a callback gauge on the Default registry.
func NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	return Default.GaugeFunc(name, help, fn)
}

// NewSpan registers a phase span on the Default registry.
func NewSpan(name, help string) *Span { return Default.Span(name, help) }

// sortedNames returns the registered names in lexical order, so the
// rendered exposition (and the run summary built on the same order) is
// deterministic.
func (r *Registry) sortedNames() []string {
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// escapeHelp escapes a HELP string per the exposition format: backslash
// and newline.
func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// EscapeLabel escapes a label value per the exposition format:
// backslash, newline, and double quote.
func EscapeLabel(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		case '"':
			out = append(out, '\\', '"')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// formatFloat renders a float64 the way Prometheus expects (shortest
// round-trip representation; +Inf/-Inf/NaN spelled out).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format, in deterministic (lexical) order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.sortedNames() {
		e := r.byName[name]
		var err error
		switch e.kind {
		case kindCounter:
			err = writeSimple(w, name, e.c.help, "counter", strconv.FormatUint(e.c.Value(), 10))
		case kindGauge:
			err = writeSimple(w, name, e.g.help, "gauge", formatFloat(e.g.Value()))
		case kindGaugeFunc:
			err = writeSimple(w, name, e.gf.help, "gauge", formatFloat(e.gf.Value()))
		case kindHistogram:
			err = writeHistogram(w, e.h)
		case kindSpan:
			err = writeSpan(w, e.s)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeSimple(w io.Writer, name, help, typ, val string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", name, typ, name, val)
	return err
}

func writeHistogram(w io.Writer, h *Histogram) error {
	if h.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", h.name, escapeHelp(h.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.name); err != nil {
		return err
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
		h.name, formatFloat(h.Sum()), h.name, h.Count())
	return err
}

func writeSpan(w io.Writer, s *Span) error {
	if s.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s_seconds_total %s\n", s.name, escapeHelp(s.help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w,
		"# TYPE %s_seconds_total counter\n%s_seconds_total %s\n# TYPE %s_invocations_total counter\n%s_invocations_total %d\n",
		s.name, s.name, formatFloat(s.Seconds()), s.name, s.name, s.Count())
	return err
}
