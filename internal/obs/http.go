package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a running telemetry endpoint. Close releases the listener;
// the CLIs normally let it live for the whole process.
type Server struct {
	// Addr is the bound listen address (host:port) — useful when the
	// caller asked for port 0.
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Close shuts the endpoint down immediately (in-flight scrapes are
// dropped). Prefer Shutdown on the normal exit path so a scrape or
// pprof capture that is mid-body completes instead of being torn.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown drains the endpoint gracefully: the listener stops
// accepting, in-flight scrapes and profile captures run to completion,
// and only when ctx expires first does it fall back to Close — so
// shutdown is always bounded, and a Prometheus scrape racing process
// exit still receives a complete body.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		_ = s.srv.Close()
	}
	return err
}

// ShutdownTimeout is Shutdown with a deadline of d from now — the
// bounded-drain form the CLIs and the placed daemon defer.
func (s *Server) ShutdownTimeout(d time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return s.Shutdown(ctx)
}

// Handler returns the telemetry mux for reg: /metrics (Prometheus text
// format), /healthz, and the net/http/pprof suite under /debug/pprof/.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the telemetry endpoint for reg on addr (host:port; port
// 0 picks a free one) and returns once the listener is bound, serving
// in a background goroutine. The search/training threads never touch
// this server — scrapes read the same atomics the hot paths write.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler: Handler(reg),
		// Diagnostic endpoint: generous but bounded, so a stuck scraper
		// cannot pin connections forever. pprof profile captures default
		// to 30s, so the write timeout must clear that.
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      90 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), ln: ln, srv: srv}, nil
}
