// Package baseline implements the comparison placers of the paper's
// evaluation (Tables II and III):
//
//   - SE — a simulated-evolution macro placer in the style of
//     [24]/[26] (Table II's "SE-based Macro Placer");
//   - DreamPlaceLike — mixed-size analytical placement where macros
//     are just large movable cells (Table II's DREAMPlace column);
//   - RePlAceLike — the analytical flow plus a density-vs-wirelength
//     force refinement of macro positions (Table III's RePlAce);
//   - CT — a pure-RL per-macro placer, no grouping and no MCTS
//     (Table III's circuit-training row);
//   - MaskPlace — a per-macro placer driven by the wiremask
//     incremental-HPWL estimate (Table III's MaskPlace row).
//
// Every baseline ends with the same finishing pass — macro overlap
// removal and a full-netlist analytical cell placement — so Table
// comparisons measure the macro-placement policy, not the finishing
// machinery. The real tools are unavailable (GPU binaries, proprietary
// code); DESIGN.md records how each substitute preserves the trait the
// paper contrasts against.
package baseline

import (
	"context"
	"math"
	"sort"

	"macroplace/internal/geom"
	"macroplace/internal/gplace"
	"macroplace/internal/legalize"
	"macroplace/internal/netlist"
)

// Result is a completed baseline run.
type Result struct {
	// HPWL is the final full-netlist half-perimeter wirelength.
	HPWL float64
	// MacroOverlap is the residual macro-macro overlap area.
	MacroOverlap float64
	// Converged reports whether the finishing shove eliminated every
	// movable-macro overlap within its iteration budget. When false the
	// placement still honors region bounds but MacroOverlap carries
	// residual overlap the shove could not resolve — callers (and the
	// portfolio conformance suite) must not treat the result as legal
	// without checking this.
	Converged bool
}

// Finish legalizes macros (pairwise shove, with a deterministic
// nearest-free-slot repair when the shove livelocks) and runs the
// final cell placement, returning the evaluated result. It mutates d.
// Designs with active physical constraints (d.Phys) additionally run
// the shared constraint-enforcement pass, so every baseline honors
// halo/channel spacing, fences, and snapping like the main flow.
func Finish(d *netlist.Design) Result {
	converged := shoveMacros(d, 200)
	if !converged {
		// The pairwise shove can cycle: multi-body push chains cancel
		// each other sweep after sweep, so a bigger budget never helps.
		// Re-seat the still-overlapping macros greedily instead, then
		// let a short shove clean up.
		if repairMacroOverlap(d) {
			converged = true
		} else {
			converged = shoveMacros(d, 50)
		}
	}
	if d.Phys.Active() {
		converged = legalize.EnforceConstraints(d) && converged
	}
	gplace.Place(d, gplace.Config{Mode: gplace.MoveCells, Iterations: 6})
	return Result{HPWL: d.HPWL(), MacroOverlap: macroOverlap(d), Converged: converged}
}

// repairMacroOverlap is the last-resort separation pass behind Finish:
// macros are committed in non-increasing area order, and any macro
// overlapping an earlier commitment (or a fixed macro) moves to the
// nearest free candidate-grid center, scanning progressively finer
// grids. It reports whether every movable macro ended overlap-free;
// macros that fit nowhere stay put and fail the pass.
func repairMacroOverlap(d *netlist.Design) bool {
	var committed []geom.Rect
	for i := range d.Nodes {
		n := &d.Nodes[i]
		if n.Kind == netlist.Macro && n.Fixed {
			committed = append(committed, n.Rect())
		}
	}
	overlapsAny := func(r geom.Rect) bool {
		for _, c := range committed {
			if r.OverlapArea(c) > 0 {
				return true
			}
		}
		return false
	}
	ok := true
	for _, m := range macrosByAreaDesc(d) {
		n := &d.Nodes[m]
		r := n.Rect()
		if !overlapsAny(r) {
			committed = append(committed, r)
			continue
		}
		cur := r.Center()
		placed := false
		for _, k := range []int{16, 32, 64} {
			bestD := math.Inf(1)
			var bestR geom.Rect
			for _, c := range candidateGrid(d.Region, n.W, n.H, k) {
				cand := geom.NewRect(c.X-n.W/2, c.Y-n.H/2, n.W, n.H).ClampInto(d.Region)
				if overlapsAny(cand) {
					continue
				}
				dx, dy := c.X-cur.X, c.Y-cur.Y
				if dist := dx*dx + dy*dy; dist < bestD {
					bestD, bestR = dist, cand
				}
			}
			if !math.IsInf(bestD, 1) {
				n.X, n.Y = bestR.Lx, bestR.Ly
				committed = append(committed, bestR)
				placed = true
				break
			}
		}
		if !placed {
			ok = false
			committed = append(committed, r)
		}
	}
	return ok
}

// cancelled reports whether ctx is non-nil and already done. The
// baselines poll it at loop granularity so cancellation yields the
// best-so-far state instead of aborting.
func cancelled(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// shoveMacros separates overlapping macros with the minimum-
// penetration push, treating fixed macros as obstacles. It reports
// whether it reached a state with no remaining movable-macro overlap
// (false: the iteration budget ran out first).
func shoveMacros(d *netlist.Design, maxIters int) bool {
	var movable, fixed []int
	for i := range d.Nodes {
		if d.Nodes[i].Kind != netlist.Macro {
			continue
		}
		if d.Nodes[i].Fixed {
			fixed = append(fixed, i)
		} else {
			movable = append(movable, i)
		}
	}
	all := append(append([]int(nil), movable...), fixed...)
	nMov := len(movable)
	for iter := 0; iter < maxIters; iter++ {
		found := false
		for a := 0; a < len(all); a++ {
			for b := a + 1; b < len(all); b++ {
				if a >= nMov && b >= nMov {
					continue
				}
				na, nb := &d.Nodes[all[a]], &d.Nodes[all[b]]
				is, ok := na.Rect().Intersect(nb.Rect())
				if !ok {
					continue
				}
				found = true
				moveA, moveB := a < nMov, b < nMov
				dx, dy := is.W(), is.H()
				push := func(n *netlist.Node, px, py float64) {
					r := n.Rect().Translate(px, py).ClampInto(d.Region)
					n.X, n.Y = r.Lx, r.Ly
				}
				if dx <= dy {
					dir := 1.0
					if na.Center().X > nb.Center().X {
						dir = -1
					}
					switch {
					case moveA && moveB:
						push(na, -dir*dx/2, 0)
						push(nb, dir*dx/2, 0)
					case moveA:
						push(na, -dir*dx, 0)
					default:
						push(nb, dir*dx, 0)
					}
				} else {
					dir := 1.0
					if na.Center().Y > nb.Center().Y {
						dir = -1
					}
					switch {
					case moveA && moveB:
						push(na, 0, -dir*dy/2)
						push(nb, 0, dir*dy/2)
					case moveA:
						push(na, 0, -dir*dy)
					default:
						push(nb, 0, dir*dy)
					}
				}
			}
		}
		if !found {
			return true
		}
	}
	return false
}

func macroOverlap(d *netlist.Design) float64 {
	macros := d.MacroIndices()
	var total float64
	for i := 0; i < len(macros); i++ {
		for j := i + 1; j < len(macros); j++ {
			total += d.Nodes[macros[i]].Rect().OverlapArea(d.Nodes[macros[j]].Rect())
		}
	}
	return total
}

// macroNetHPWL returns the summed HPWL of the nets incident to node m,
// using current positions.
func macroNetHPWL(d *netlist.Design, nodeNets [][]int, m int) float64 {
	var total float64
	for _, ni := range nodeNets[m] {
		total += d.Nets[ni].EffWeight() * d.NetHPWL(ni)
	}
	return total
}

// macrosByAreaDesc returns movable macro indices sorted by
// non-increasing area (deterministic tie-break by index).
func macrosByAreaDesc(d *netlist.Design) []int {
	ms := d.MovableMacroIndices()
	sort.Slice(ms, func(i, j int) bool {
		ai, aj := d.Nodes[ms[i]].Area(), d.Nodes[ms[j]].Area()
		if ai != aj {
			return ai > aj
		}
		return ms[i] < ms[j]
	})
	return ms
}

// DreamPlaceLike is the analytical mixed-size baseline: one global
// placement treating macros as movable, followed by the common finish.
// It mirrors how the paper invokes DREAMPlace on Table II — no
// hierarchy awareness, wirelength-driven only.
func DreamPlaceLike(d *netlist.Design) Result {
	gplace.Place(d, gplace.Config{Mode: gplace.MoveAll, Iterations: 10})
	return Finish(d)
}

// candidateGrid enumerates k×k candidate centers inside region for a
// node of size w×h.
func candidateGrid(region geom.Rect, w, h float64, k int) []geom.Point {
	var out []geom.Point
	for iy := 0; iy < k; iy++ {
		for ix := 0; ix < k; ix++ {
			cx := region.Lx + (float64(ix)+0.5)*region.W()/float64(k)
			cy := region.Ly + (float64(iy)+0.5)*region.H()/float64(k)
			r := geom.NewRect(cx-w/2, cy-h/2, w, h).ClampInto(region)
			out = append(out, r.Center())
		}
	}
	return out
}
