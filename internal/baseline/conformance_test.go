// Conformance one-liners: every baseline-backed portfolio backend
// passes the shared invariant suite from inside this package's tests,
// so a baseline regression fails here even before the portfolio
// package's full matrix runs. External test package — the suite lives
// above baseline in the import graph.
package baseline_test

import (
	"testing"

	"macroplace/internal/portfolio"
	"macroplace/internal/portfolio/conformance"
)

func conformanceDesigns(t *testing.T) conformance.Config {
	// One design per package run keeps tier-1 time flat; the portfolio
	// package covers the full 3-design matrix.
	return conformance.Config{Designs: conformance.StandardDesigns(t)[:1]}
}

func TestConformanceSE(t *testing.T) {
	conformance.Run(t, portfolio.BackendSE, conformanceDesigns(t))
}

func TestConformanceCT(t *testing.T) {
	conformance.Run(t, portfolio.BackendCT, conformanceDesigns(t))
}

func TestConformanceMaskPlace(t *testing.T) {
	conformance.Run(t, portfolio.BackendMaskPlace, conformanceDesigns(t))
}

func TestConformanceRePlAce(t *testing.T) {
	conformance.Run(t, portfolio.BackendRePlAce, conformanceDesigns(t))
}

func TestConformanceMinCut(t *testing.T) {
	conformance.Run(t, portfolio.BackendMinCut, conformanceDesigns(t))
}

func TestConformanceSABTree(t *testing.T) {
	conformance.Run(t, portfolio.BackendSABTree, conformanceDesigns(t))
}
