package baseline

import (
	"context"
	"math"

	"macroplace/internal/geom"
	"macroplace/internal/gplace"
	"macroplace/internal/netlist"
)

// RePlAceConfig tunes the density-driven analytical baseline.
type RePlAceConfig struct {
	// Rounds is the number of force-refinement rounds after global
	// placement (default 30).
	Rounds int
	// Bins is the density-grid resolution per axis (default 16).
	Bins int
	// Lambda0 is the initial density-force weight relative to the
	// wirelength force; it grows geometrically per round, mirroring
	// ePlace/RePlAce's penalty scheduling (default 0.1).
	Lambda0 float64
	// LambdaGrowth multiplies the density weight each round
	// (default 1.1).
	LambdaGrowth float64
	// Ctx, when non-nil, is polled between refinement rounds:
	// cancellation keeps the rounds finished so far and still runs the
	// common finishing pass.
	Ctx context.Context
}

func (c RePlAceConfig) normalize() RePlAceConfig {
	if c.Rounds <= 0 {
		c.Rounds = 30
	}
	if c.Bins <= 0 {
		c.Bins = 16
	}
	if c.Lambda0 <= 0 {
		c.Lambda0 = 0.1
	}
	if c.LambdaGrowth <= 0 {
		c.LambdaGrowth = 1.1
	}
	return c
}

// RePlAceLike is the analytical density-driven baseline of Table III:
// mixed-size global placement followed by rounds of combined
// wirelength-pull and density-push forces on the macros with a growing
// density penalty — a CPU-sized stand-in for RePlAce's
// electrostatics-based formulation [10]. It mutates d.
func RePlAceLike(d *netlist.Design, cfg RePlAceConfig) Result {
	cfg = cfg.normalize()
	gplace.Place(d, gplace.Config{Mode: gplace.MoveAll, Iterations: 10})

	nodeNets := d.NodeNets()
	macros := macrosByAreaDesc(d)
	if len(macros) == 0 {
		return Finish(d)
	}

	nb := cfg.Bins
	bw := d.Region.W() / float64(nb)
	bh := d.Region.H() / float64(nb)
	lambda := cfg.Lambda0
	step := math.Min(bw, bh) // max move per round

	for round := 0; round < cfg.Rounds; round++ {
		if cancelled(cfg.Ctx) {
			break
		}
		density := rasterDensity(d, nb, bw, bh)
		for _, m := range macros {
			n := &d.Nodes[m]
			// Wirelength force: toward the mean of incident nets'
			// other-pin centroids.
			var wx, wy, ww float64
			for _, ni := range nodeNets[m] {
				net := &d.Nets[ni]
				var cx, cy float64
				cnt := 0
				for _, p := range net.Pins {
					if p.Node == m {
						continue
					}
					c := d.Nodes[p.Node].Center()
					cx += c.X
					cy += c.Y
					cnt++
				}
				if cnt == 0 {
					continue
				}
				w := net.EffWeight()
				wx += w * cx / float64(cnt)
				wy += w * cy / float64(cnt)
				ww += w
			}
			c := n.Center()
			var fx, fy float64
			if ww > 0 {
				fx = wx/ww - c.X
				fy = wy/ww - c.Y
			}
			// Density force: negative gradient of the bin density
			// under the macro footprint.
			dfx, dfy := densityGradient(density, d.Region, nb, bw, bh, n.Rect())
			fx -= lambda * dfx * bw
			fy -= lambda * dfy * bh

			// Bounded step.
			l := math.Hypot(fx, fy)
			if l > step {
				fx, fy = fx/l*step, fy/l*step
			}
			r := n.Rect().Translate(fx, fy).ClampInto(d.Region)
			n.X, n.Y = r.Lx, r.Ly
		}
		lambda *= cfg.LambdaGrowth
	}
	return Finish(d)
}

// rasterDensity bins the area of every node (plus fixed blockages)
// normalised by bin area.
func rasterDensity(d *netlist.Design, nb int, bw, bh float64) [][]float64 {
	den := make([][]float64, nb)
	for i := range den {
		den[i] = make([]float64, nb)
	}
	binArea := bw * bh
	for i := range d.Nodes {
		n := &d.Nodes[i]
		if n.Kind == netlist.Pad {
			continue
		}
		r := n.Rect()
		x0 := int(math.Floor((r.Lx - d.Region.Lx) / bw))
		x1 := int(math.Ceil((r.Ux - d.Region.Lx) / bw))
		y0 := int(math.Floor((r.Ly - d.Region.Ly) / bh))
		y1 := int(math.Ceil((r.Uy - d.Region.Ly) / bh))
		for by := clampI(y0, 0, nb-1); by <= clampI(y1-1, 0, nb-1); by++ {
			for bx := clampI(x0, 0, nb-1); bx <= clampI(x1-1, 0, nb-1); bx++ {
				bin := geom.NewRect(d.Region.Lx+float64(bx)*bw, d.Region.Ly+float64(by)*bh, bw, bh)
				den[by][bx] += r.OverlapArea(bin) / binArea
			}
		}
	}
	return den
}

// densityGradient approximates ∂density/∂x and ∂density/∂y averaged
// over the bins the rectangle covers (central differences).
func densityGradient(den [][]float64, region geom.Rect, nb int, bw, bh float64, r geom.Rect) (gx, gy float64) {
	c := r.Center()
	bx := clampI(int((c.X-region.Lx)/bw), 0, nb-1)
	by := clampI(int((c.Y-region.Ly)/bh), 0, nb-1)
	at := func(x, y int) float64 {
		return den[clampI(y, 0, nb-1)][clampI(x, 0, nb-1)]
	}
	gx = (at(bx+1, by) - at(bx-1, by)) / 2
	gy = (at(bx, by+1) - at(bx, by-1)) / 2
	return gx, gy
}

func clampI(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
