package baseline

import (
	"math"

	"macroplace/internal/btree"
	"macroplace/internal/geom"
	"macroplace/internal/gplace"
	"macroplace/internal/netlist"
	"macroplace/internal/rng"
)

// SABTree is the B*-tree variant of the annealing baseline: macros are
// encoded as a B*-tree (the representation of the paper's citations
// [6]/[36]), perturbed with the classic swap/rotate/move set, decoded
// by contour packing, and evaluated by macro-incident wirelength plus
// an out-of-region penalty after centering the floorplan in the
// placement region. It mutates d.
func SABTree(d *netlist.Design, cfg SAConfig) Result {
	cfg = cfg.normalize()
	r := rng.New(cfg.Seed).Split("sabtree")

	gplace.Place(d, gplace.Config{Mode: gplace.MoveAll, Iterations: 6})
	macros := macrosByAreaDesc(d)
	n := len(macros)
	if n == 0 {
		return Finish(d)
	}
	nodeNets := d.NodeNets()

	blocks := make([]btree.Block, n)
	for i, m := range macros {
		blocks[i] = btree.Block{W: d.Nodes[m].W, H: d.Nodes[m].H}
	}
	tree := btree.New(blocks)

	// apply decodes the tree, centers the floorplan in the region, and
	// writes macro positions; it returns the floorplan bounding box.
	apply := func(t *btree.Tree) geom.Rect {
		bb := t.Pack()
		cx := d.Region.Center().X - bb.W()/2
		cy := d.Region.Center().Y - bb.H()/2
		for i, m := range macros {
			blk := t.Blocks[i].Rect().Translate(cx, cy)
			blk = blk.ClampInto(d.Region)
			d.Nodes[m].X, d.Nodes[m].Y = blk.Lx, blk.Ly
		}
		return bb
	}

	cost := func(bb geom.Rect) float64 {
		var total float64
		for _, m := range macros {
			total += macroNetHPWL(d, nodeNets, m)
		}
		// Penalise floorplans exceeding the region: such packings get
		// clamped and overlap, which the finishing shove must undo.
		exW := math.Max(0, bb.W()-d.Region.W())
		exH := math.Max(0, bb.H()-d.Region.H())
		return total * (1 + (exW+exH)/(d.Region.W()+d.Region.H()))
	}

	cur := cost(apply(tree))
	best := cur
	bestTree := tree.Clone()
	temp := cfg.T0 * math.Max(cur, 1)

	for it := 0; it < cfg.Iterations; it++ {
		if it&63 == 0 && cancelled(cfg.Ctx) {
			break
		}
		next := tree.Clone()
		next.Perturb(r)
		cand := cost(apply(next))
		delta := cand - cur
		if delta <= 0 || r.Float64() < math.Exp(-delta/math.Max(temp, 1e-12)) {
			tree = next
			cur = cand
			if cur < best {
				best = cur
				bestTree = tree.Clone()
				if cfg.Progress != nil {
					cfg.Progress(best)
				}
			}
		}
		temp *= cfg.Cooling
	}
	apply(bestTree)
	return Finish(d)
}
