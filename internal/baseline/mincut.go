package baseline

import (
	"context"

	"macroplace/internal/geom"
	"macroplace/internal/netlist"
	"macroplace/internal/partition"
)

// MinCutConfig tunes the recursive-bisection placer.
type MinCutConfig struct {
	// LeafSize stops recursion once a region holds at most this many
	// nodes (default 12).
	LeafSize int
	Seed     int64
	// Ctx, when non-nil, is polled before each bisection: cancellation
	// treats the remaining subsets as leaves (nodes land at their
	// region centers), so the result stays complete and in-bounds.
	Ctx context.Context
}

func (c MinCutConfig) normalize() MinCutConfig {
	if c.LeafSize <= 0 {
		c.LeafSize = 12
	}
	return c
}

// MinCut is the classic partitioning-driven placer: the region is
// bisected recursively (alternating vertical/horizontal cutlines), the
// movable nodes are FM-partitioned to minimise the nets crossing each
// cutline, and every node lands at the center of its leaf region. It
// predates the analytical and learning-based families in the paper's
// related work and serves as an extra reference point. It mutates d.
func MinCut(d *netlist.Design, cfg MinCutConfig) Result {
	cfg = cfg.normalize()
	var movable []int
	for i := range d.Nodes {
		if d.Nodes[i].Movable() {
			movable = append(movable, i)
		}
	}
	if len(movable) == 0 {
		return Finish(d)
	}
	var recurse func(nodes []int, region geom.Rect, vertical bool, seed int64)
	recurse = func(nodes []int, region geom.Rect, vertical bool, seed int64) {
		if len(nodes) <= cfg.LeafSize || cancelled(cfg.Ctx) {
			c := region.Center()
			for _, ni := range nodes {
				d.Nodes[ni].SetCenter(c.X, c.Y)
				r := d.Nodes[ni].Rect().ClampInto(d.Region)
				d.Nodes[ni].X, d.Nodes[ni].Y = r.Lx, r.Ly
			}
			return
		}
		// Hypergraph over this node subset; nets project onto it.
		idxOf := make(map[int]int, len(nodes))
		for i, ni := range nodes {
			idxOf[ni] = i
		}
		h := partition.NewHypergraph(len(nodes))
		for i, ni := range nodes {
			h.Areas[i] = d.Nodes[ni].Area()
			if h.Areas[i] <= 0 {
				h.Areas[i] = 1
			}
		}
		var verts []int
		for e := range d.Nets {
			verts = verts[:0]
			for _, p := range d.Nets[e].Pins {
				if v, ok := idxOf[p.Node]; ok {
					verts = append(verts, v)
				}
			}
			if len(verts) >= 2 {
				h.AddNet(verts, d.Nets[e].EffWeight())
			}
		}
		res := partition.Bipartition(h, partition.Config{Seed: seed})
		var lo, hi []int
		for i, ni := range nodes {
			if res.Part[i] == 0 {
				lo = append(lo, ni)
			} else {
				hi = append(hi, ni)
			}
		}
		// A dominant-area vertex lets FM park every node on one side
		// within its balance slack; recursion then never terminates.
		// Fall back to an even count split (keeping FM's side order).
		if len(lo) == 0 || len(hi) == 0 {
			all := append(append([]int(nil), lo...), hi...)
			mid := len(all) / 2
			lo, hi = all[:mid], all[mid:]
		}
		var r0, r1 geom.Rect
		if vertical {
			mid := (region.Lx + region.Ux) / 2
			r0 = geom.Rect{Lx: region.Lx, Ly: region.Ly, Ux: mid, Uy: region.Uy}
			r1 = geom.Rect{Lx: mid, Ly: region.Ly, Ux: region.Ux, Uy: region.Uy}
		} else {
			mid := (region.Ly + region.Uy) / 2
			r0 = geom.Rect{Lx: region.Lx, Ly: region.Ly, Ux: region.Ux, Uy: mid}
			r1 = geom.Rect{Lx: region.Lx, Ly: mid, Ux: region.Ux, Uy: region.Uy}
		}
		recurse(lo, r0, !vertical, seed*2+1)
		recurse(hi, r1, !vertical, seed*2+2)
	}
	recurse(movable, d.Region, true, cfg.Seed+1)
	return Finish(d)
}
