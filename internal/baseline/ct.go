package baseline

import (
	"context"

	"macroplace/internal/agent"
	"macroplace/internal/cluster"
	"macroplace/internal/geom"
	"macroplace/internal/gplace"
	"macroplace/internal/grid"
	"macroplace/internal/netlist"
	"macroplace/internal/rl"
)

// CTConfig tunes the circuit-training-like baseline.
type CTConfig struct {
	// Zeta is the action-grid resolution (default 16).
	Zeta int
	// Episodes is the RL training budget (default 150).
	Episodes int
	// Agent optionally overrides the network shape.
	Agent agent.Config
	Seed  int64
	// Ctx, when non-nil, cancels training between episodes; the greedy
	// episode over the last completed update still produces a complete
	// placement.
	Ctx context.Context
}

func (c CTConfig) normalize() CTConfig {
	if c.Zeta <= 0 {
		c.Zeta = 16
	}
	if c.Episodes <= 0 {
		c.Episodes = 150
	}
	return c
}

// macroEnv builds a per-macro allocation environment: every movable
// macro is its own singleton "group", ordered by non-increasing area.
// It returns the env and the macro order.
func macroEnv(d *netlist.Design, zeta int) (*grid.Env, []int) {
	g := grid.New(d.Region, zeta)
	macros := macrosByAreaDesc(d)
	shapes := make([]grid.Shape, len(macros))
	for i, m := range macros {
		n := &d.Nodes[m]
		grp := cluster.Group{
			Members: []int{m},
			Area:    n.Area(),
			MaxW:    n.W, MaxH: n.H,
			CX: n.X + n.W/2, CY: n.Y + n.H/2,
		}
		shapes[i] = grid.ShapeOf(g, &grp)
	}
	var fixedRects []geom.Rect
	for i := range d.Nodes {
		n := &d.Nodes[i]
		if n.Kind == netlist.Macro && n.Fixed {
			fixedRects = append(fixedRects, n.Rect())
		}
	}
	return grid.NewEnv(g, shapes, grid.BaseUtilFromFixed(g, fixedRects)), macros
}

// macroIncidentWL builds a fast wirelength oracle over the nets that
// touch at least one movable macro: cells stay at their current
// (global-placement) positions; the anchors decide macro rectangles.
func macroIncidentWL(d *netlist.Design, env *grid.Env, macros []int) rl.WirelengthFunc {
	// Nets touching any movable macro.
	isMacro := make(map[int]int, len(macros)) // node -> order index
	for i, m := range macros {
		isMacro[m] = i
	}
	var nets []int
	for ni := range d.Nets {
		for _, p := range d.Nets[ni].Pins {
			if _, ok := isMacro[p.Node]; ok {
				nets = append(nets, ni)
				break
			}
		}
	}
	return func(anchors []int) float64 {
		var total float64
		var b geom.BBox
		for _, ni := range nets {
			b.Reset()
			net := &d.Nets[ni]
			for _, p := range net.Pins {
				var c geom.Point
				if oi, ok := isMacro[p.Node]; ok {
					c = env.GroupRect(oi, anchors[oi]).Center()
				} else {
					c = d.Nodes[p.Node].Center()
				}
				b.Add(c.X+p.Dx, c.Y+p.Dy)
			}
			total += net.EffWeight() * b.HPWL()
		}
		return total
	}
}

// CT is the circuit-training-like baseline of Table III: reinforcement
// learning places *individual* macros (no grouping) and the trained
// policy's greedy episode is the final answer — no MCTS. The traits
// the paper contrasts against (per-macro actions, RL-only decision
// making) are preserved; network scale is CPU-sized. It mutates d.
func CT(d *netlist.Design, cfg CTConfig) Result {
	cfg = cfg.normalize()
	gplace.Place(d, gplace.Config{Mode: gplace.MoveAll, Iterations: 6})
	env, macros := macroEnv(d, cfg.Zeta)
	if len(macros) == 0 {
		return Finish(d)
	}
	wl := macroIncidentWL(d, env, macros)

	acfg := cfg.Agent
	if acfg.Channels == 0 {
		acfg = agent.Default(cfg.Zeta, len(macros)+1, cfg.Seed+3)
	}
	acfg.Zeta = cfg.Zeta
	if acfg.MaxSteps < len(macros)+1 {
		acfg.MaxSteps = len(macros) + 1
	}
	ag := agent.New(acfg)
	tr := rl.NewTrainer(rl.Config{
		Episodes: cfg.Episodes,
		Seed:     cfg.Seed + 1,
	}, ag, env.Clone(), wl)
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	tr.RunContext(ctx)

	anchors, _ := rl.PlayGreedy(ag, env.Clone(), wl)
	applyAnchors(d, env, macros, anchors)
	return Finish(d)
}

// applyAnchors writes anchor rectangles back to the macros.
func applyAnchors(d *netlist.Design, env *grid.Env, macros []int, anchors []int) {
	for i, m := range macros {
		r := env.GroupRect(i, anchors[i]).ClampInto(d.Region)
		d.Nodes[m].X, d.Nodes[m].Y = r.Lx, r.Ly
	}
}
