package baseline

import (
	"context"
	"math"

	"macroplace/internal/geom"
	"macroplace/internal/gplace"
	"macroplace/internal/legalize"
	"macroplace/internal/netlist"
	"macroplace/internal/rng"
)

// SAConfig tunes the simulated-annealing macro placer.
type SAConfig struct {
	// Iterations is the total annealing moves (default 4000).
	Iterations int
	// T0 is the initial temperature relative to the initial cost
	// (default 0.1: accepts ~10%-cost-increase moves early).
	T0 float64
	// Cooling is the per-step geometric cooling factor (default
	// derived so the temperature decays to 1e-3·T0 by the end).
	Cooling float64
	Seed    int64
	// Ctx, when non-nil, is polled every few annealing moves:
	// cancellation keeps the accepted-best state and still runs the
	// common finishing pass, so the result is always complete.
	Ctx context.Context
	// Progress, when set, receives each new accepted-best cost (the
	// macro-incident wirelength objective — anytime estimates, not
	// full-netlist HPWL).
	Progress func(bestCost float64)
}

func (c SAConfig) normalize() SAConfig {
	if c.Iterations <= 0 {
		c.Iterations = 4000
	}
	if c.T0 <= 0 {
		c.T0 = 0.1
	}
	if c.Cooling <= 0 {
		c.Cooling = math.Pow(1e-3, 1/float64(c.Iterations))
	}
	return c
}

// SA is a sequence-pair simulated-annealing macro placer — the
// paper's "first category" of macro placement algorithms ([6]-[9],
// [20], [36] use SA over floorplan representations). The movable
// macros are encoded as a sequence pair (Murata [28]); moves swap
// elements within one or both sequences; every state is decoded by
// longest-path packing anchored at the region corner, and evaluated by
// the HPWL of macro-incident nets with cells frozen at their
// analytical positions. The accepted-best state feeds the common
// finishing pass. It mutates d.
func SA(d *netlist.Design, cfg SAConfig) Result {
	cfg = cfg.normalize()
	r := rng.New(cfg.Seed).Split("sa")

	gplace.Place(d, gplace.Config{Mode: gplace.MoveAll, Iterations: 6})
	macros := macrosByAreaDesc(d)
	n := len(macros)
	if n == 0 {
		return Finish(d)
	}
	nodeNets := d.NodeNets()

	// Initial sequence pair from the analytical placement.
	items := make([]legalize.Item, n)
	for i, m := range macros {
		node := &d.Nodes[m]
		items[i] = legalize.Item{W: node.W, H: node.H, X: node.X, Y: node.Y}
	}
	sp := legalize.ExtractSeqPair(items)

	decode := func(sp legalize.SeqPair) []geom.Point {
		hor, ver := sp.Relations()
		ws := make([]float64, n)
		hs := make([]float64, n)
		tx := make([]float64, n)
		ty := make([]float64, n)
		for i, m := range macros {
			ws[i] = d.Nodes[m].W
			hs[i] = d.Nodes[m].H
			tx[i] = d.Nodes[m].X
			ty[i] = d.Nodes[m].Y
		}
		xs := legalize.PackAxis(n, hor, ws, tx, d.Region.Lx, d.Region.Ux)
		ys := legalize.PackAxis(n, ver, hs, ty, d.Region.Ly, d.Region.Uy)
		out := make([]geom.Point, n)
		for i := range out {
			out[i] = geom.Point{X: xs[i], Y: ys[i]}
		}
		return out
	}

	apply := func(pos []geom.Point) {
		for i, m := range macros {
			node := &d.Nodes[m]
			rect := geom.NewRect(pos[i].X, pos[i].Y, node.W, node.H).ClampInto(d.Region)
			node.X, node.Y = rect.Lx, rect.Ly
		}
	}

	cost := func() float64 {
		var total float64
		for _, m := range macros {
			total += macroNetHPWL(d, nodeNets, m)
		}
		// Each incident net counted once per incident macro: constant
		// factor, irrelevant for annealing comparisons.
		return total
	}

	apply(decode(sp))
	cur := cost()
	best := cur
	bestSP := cloneSP(sp)

	temp := cfg.T0 * math.Max(cur, 1)
	for it := 0; it < cfg.Iterations; it++ {
		if it&63 == 0 && cancelled(cfg.Ctx) {
			break
		}
		next := cloneSP(sp)
		i, j := r.Intn(n), r.Intn(n)
		for j == i && n > 1 {
			j = r.Intn(n)
		}
		switch r.Intn(3) {
		case 0: // swap in S⁺ only
			next.SPlus[i], next.SPlus[j] = next.SPlus[j], next.SPlus[i]
		case 1: // swap in S⁻ only
			next.SMinus[i], next.SMinus[j] = next.SMinus[j], next.SMinus[i]
		default: // swap in both (relocation)
			next.SPlus[i], next.SPlus[j] = next.SPlus[j], next.SPlus[i]
			next.SMinus[i], next.SMinus[j] = next.SMinus[j], next.SMinus[i]
		}
		apply(decode(next))
		cand := cost()
		delta := cand - cur
		if delta <= 0 || r.Float64() < math.Exp(-delta/math.Max(temp, 1e-12)) {
			sp = next
			cur = cand
			if cur < best {
				best = cur
				bestSP = cloneSP(sp)
				if cfg.Progress != nil {
					cfg.Progress(best)
				}
			}
		}
		temp *= cfg.Cooling
	}
	apply(decode(bestSP))
	return Finish(d)
}

func cloneSP(sp legalize.SeqPair) legalize.SeqPair {
	return legalize.SeqPair{
		SPlus:  append([]int(nil), sp.SPlus...),
		SMinus: append([]int(nil), sp.SMinus...),
	}
}
