package baseline

import (
	"context"
	"math"

	"macroplace/internal/gplace"
	"macroplace/internal/netlist"
	"macroplace/internal/rng"
)

// SEConfig tunes the simulated-evolution macro placer.
type SEConfig struct {
	// Generations is the evolution length (default 40).
	Generations int
	// Candidates is the candidate-grid resolution per axis used
	// during allocation (default 16).
	Candidates int
	// Bias shifts selection pressure: higher keeps more macros in
	// place per generation (default 0.3).
	Bias float64
	// HierWeight rewards candidate positions close to hierarchy
	// siblings, the dataflow-awareness of [26] (default 0.15).
	HierWeight float64
	Seed       int64
	// Ctx, when non-nil, is polled between generations: cancellation
	// keeps the best-so-far macro placement and still runs the common
	// finishing pass, so the result is always complete.
	Ctx context.Context
	// Progress, when set, receives each new best full-netlist HPWL as
	// the evolution improves (pre-finish values — anytime estimates).
	Progress func(bestHPWL float64)
}

func (c SEConfig) normalize() SEConfig {
	if c.Generations <= 0 {
		c.Generations = 40
	}
	if c.Candidates <= 0 {
		c.Candidates = 16
	}
	if c.Bias == 0 {
		c.Bias = 0.3
	}
	if c.HierWeight == 0 {
		c.HierWeight = 0.15
	}
	return c
}

// SE runs the simulated-evolution macro placer of [24]/[26] in its
// three classic phases per generation — evaluation (per-macro net
// cost), selection (rip up macros whose cost exceeds a goodness
// threshold), and allocation (greedy re-placement at the best
// candidate slot, hierarchy-aware) — then finishes with the common
// legalize-and-place-cells pass. It mutates d.
func SE(d *netlist.Design, cfg SEConfig) Result {
	cfg = cfg.normalize()
	r := rng.New(cfg.Seed).Split("se")

	// Starting point: mixed analytical placement.
	gplace.Place(d, gplace.Config{Mode: gplace.MoveAll, Iterations: 6})

	nodeNets := d.NodeNets()
	macros := macrosByAreaDesc(d)
	if len(macros) == 0 {
		return Finish(d)
	}

	// Hierarchy sibling centroids for the dataflow-aware bonus.
	hierOf := make(map[string][]int)
	for _, m := range macros {
		h := d.Nodes[m].Hier
		if h != "" {
			hierOf[h] = append(hierOf[h], m)
		}
	}

	bestPos := d.Positions()
	bestWL := d.HPWL()

	for gen := 0; gen < cfg.Generations; gen++ {
		if cancelled(cfg.Ctx) {
			break
		}
		// Evaluation: per-macro cost relative to its best possible
		// (zero-span) wiring; goodness = ideal/actual ∈ (0, 1].
		costs := make([]float64, len(macros))
		var avg float64
		for i, m := range macros {
			costs[i] = macroNetHPWL(d, nodeNets, m)
			avg += costs[i]
		}
		avg /= float64(len(macros))
		if avg <= 0 {
			break
		}

		// Selection: rip up macros with probability growing in their
		// relative cost, damped by the bias.
		var selected []int
		for i, m := range macros {
			p := costs[i]/avg - cfg.Bias
			if r.Float64() < p {
				selected = append(selected, m)
			}
		}
		if len(selected) == 0 {
			// Always move at least one: the worst.
			worst, worstC := macros[0], -1.0
			for i, m := range macros {
				if costs[i] > worstC {
					worst, worstC = m, costs[i]
				}
			}
			selected = append(selected, worst)
		}
		r.Shuffle(len(selected), func(i, j int) { selected[i], selected[j] = selected[j], selected[i] })

		// Allocation: greedy best candidate per ripped-up macro.
		for _, m := range selected {
			n := &d.Nodes[m]
			cands := candidateGrid(d.Region, n.W, n.H, cfg.Candidates)
			// Include the current position so a generation can no-op.
			cands = append(cands, n.Center())
			bestC, bestScore := n.Center(), math.Inf(1)
			for _, c := range cands {
				n.SetCenter(c.X, c.Y)
				score := macroNetHPWL(d, nodeNets, m)
				score += overlapPenalty(d, macros, m)
				if cfg.HierWeight > 0 && n.Hier != "" {
					score += cfg.HierWeight * hierDistance(d, hierOf[n.Hier], m)
				}
				if score < bestScore {
					bestScore, bestC = score, c
				}
			}
			n.SetCenter(bestC.X, bestC.Y)
		}

		if wl := d.HPWL(); wl < bestWL {
			bestWL = wl
			bestPos = d.Positions()
			if cfg.Progress != nil {
				cfg.Progress(bestWL)
			}
		}
	}
	d.SetPositions(bestPos)
	return Finish(d)
}

// overlapPenalty charges the overlap area macro m creates against the
// other macros, weighted to dominate small wirelength gains.
func overlapPenalty(d *netlist.Design, macros []int, m int) float64 {
	rm := d.Nodes[m].Rect()
	var total float64
	for _, o := range macros {
		if o == m {
			continue
		}
		total += rm.OverlapArea(d.Nodes[o].Rect())
	}
	// Also penalize fixed macros.
	for i := range d.Nodes {
		if d.Nodes[i].Kind == netlist.Macro && d.Nodes[i].Fixed {
			total += rm.OverlapArea(d.Nodes[i].Rect())
		}
	}
	return 4 * math.Sqrt(total) * math.Sqrt(rm.Area())
}

// hierDistance is the mean distance from m to its hierarchy siblings.
func hierDistance(d *netlist.Design, siblings []int, m int) float64 {
	if len(siblings) <= 1 {
		return 0
	}
	c := d.Nodes[m].Center()
	var total float64
	n := 0
	for _, s := range siblings {
		if s == m {
			continue
		}
		total += c.Manhattan(d.Nodes[s].Center())
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}
