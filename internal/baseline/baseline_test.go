package baseline

import (
	"math"
	"testing"

	"macroplace/internal/gen"
	"macroplace/internal/geom"
	"macroplace/internal/netlist"
)

func benchDesign(t *testing.T, seed int64) *netlist.Design {
	t.Helper()
	d, err := gen.IBM("ibm01", 0.02, seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func cirDesign(t *testing.T, seed int64) *netlist.Design {
	t.Helper()
	d, err := gen.Cir("cir1", 0.003, seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// checkResult verifies the baseline contract: positive HPWL, no
// residual macro overlap worth mentioning, macros inside the region.
func checkResult(t *testing.T, name string, d *netlist.Design, res Result) {
	t.Helper()
	if res.HPWL <= 0 {
		t.Fatalf("%s: HPWL = %v", name, res.HPWL)
	}
	var macroArea float64
	for _, m := range d.MacroIndices() {
		macroArea += d.Nodes[m].Area()
	}
	if macroArea > 0 && res.MacroOverlap > 0.05*macroArea {
		t.Errorf("%s: overlap %v is %.1f%% of macro area", name, res.MacroOverlap, res.MacroOverlap/macroArea*100)
	}
	// Tolerance: SetCenter/ClampInto round-trips can leave a boundary
	// coordinate off by ~1 ulp.
	eps := 1e-6 * (d.Region.W() + d.Region.H())
	for _, m := range d.MovableMacroIndices() {
		r := d.Nodes[m].Rect()
		if r.Lx < d.Region.Lx-eps || r.Ly < d.Region.Ly-eps ||
			r.Ux > d.Region.Ux+eps || r.Uy > d.Region.Uy+eps {
			t.Errorf("%s: macro %s outside region: %v", name, d.Nodes[m].Name, r)
		}
	}
}

func TestDreamPlaceLike(t *testing.T) {
	d := benchDesign(t, 1)
	random := d.HPWL()
	res := DreamPlaceLike(d)
	checkResult(t, "dreamplace", d, res)
	if res.HPWL >= random {
		t.Errorf("HPWL %v did not improve over random %v", res.HPWL, random)
	}
}

func TestSE(t *testing.T) {
	d := cirDesign(t, 2)
	random := d.HPWL()
	res := SE(d, SEConfig{Generations: 10, Candidates: 8, Seed: 3})
	checkResult(t, "se", d, res)
	if res.HPWL >= random {
		t.Errorf("HPWL %v did not improve over random %v", res.HPWL, random)
	}
}

func TestSEDeterministic(t *testing.T) {
	r1 := SE(cirDesign(t, 4), SEConfig{Generations: 6, Candidates: 8, Seed: 5})
	r2 := SE(cirDesign(t, 4), SEConfig{Generations: 6, Candidates: 8, Seed: 5})
	if r1.HPWL != r2.HPWL {
		t.Errorf("SE not deterministic: %v vs %v", r1.HPWL, r2.HPWL)
	}
}

func TestRePlAceLike(t *testing.T) {
	d := benchDesign(t, 6)
	random := d.HPWL()
	res := RePlAceLike(d, RePlAceConfig{Rounds: 10})
	checkResult(t, "replace", d, res)
	if res.HPWL >= random {
		t.Errorf("HPWL %v did not improve over random %v", res.HPWL, random)
	}
}

func TestCT(t *testing.T) {
	d := benchDesign(t, 7)
	random := d.HPWL()
	res := CT(d, CTConfig{Zeta: 8, Episodes: 15, Seed: 8})
	checkResult(t, "ct", d, res)
	if res.HPWL >= random {
		t.Errorf("HPWL %v did not improve over random %v", res.HPWL, random)
	}
}

func TestMaskPlace(t *testing.T) {
	d := benchDesign(t, 9)
	random := d.HPWL()
	res := MaskPlace(d, MaskPlaceConfig{Zeta: 8, Restarts: 4, Seed: 10})
	checkResult(t, "maskplace", d, res)
	if res.HPWL >= random {
		t.Errorf("HPWL %v did not improve over random %v", res.HPWL, random)
	}
}

func TestMaskPlaceDeterministic(t *testing.T) {
	r1 := MaskPlace(benchDesign(t, 11), MaskPlaceConfig{Zeta: 8, Restarts: 3, Seed: 12})
	r2 := MaskPlace(benchDesign(t, 11), MaskPlaceConfig{Zeta: 8, Restarts: 3, Seed: 12})
	if r1.HPWL != r2.HPWL {
		t.Errorf("MaskPlace not deterministic: %v vs %v", r1.HPWL, r2.HPWL)
	}
}

func TestFinishSeparatesOverlappingMacros(t *testing.T) {
	d := &netlist.Design{Name: "ov", Region: geom.NewRect(0, 0, 40, 40)}
	d.AddNode(netlist.Node{Name: "a", Kind: netlist.Macro, W: 6, H: 6, X: 10, Y: 10})
	d.AddNode(netlist.Node{Name: "b", Kind: netlist.Macro, W: 6, H: 6, X: 12, Y: 12})
	d.AddNode(netlist.Node{Name: "f", Kind: netlist.Macro, Fixed: true, W: 6, H: 6, X: 14, Y: 8})
	d.AddNode(netlist.Node{Name: "c", Kind: netlist.Cell, W: 1, H: 1, X: 0, Y: 0})
	d.AddNet(netlist.Net{Name: "n", Pins: []netlist.Pin{{Node: 0}, {Node: 3}}})
	res := Finish(d)
	if res.MacroOverlap > 1e-9 {
		t.Errorf("Finish left overlap %v", res.MacroOverlap)
	}
	// Fixed macro must not move.
	if d.Nodes[2].X != 14 || d.Nodes[2].Y != 8 {
		t.Error("Finish moved a fixed macro")
	}
}

func TestMacrosByAreaDesc(t *testing.T) {
	d := &netlist.Design{Region: geom.NewRect(0, 0, 10, 10)}
	d.AddNode(netlist.Node{Name: "s", Kind: netlist.Macro, W: 1, H: 1})
	d.AddNode(netlist.Node{Name: "l", Kind: netlist.Macro, W: 3, H: 3})
	d.AddNode(netlist.Node{Name: "f", Kind: netlist.Macro, Fixed: true, W: 9, H: 9})
	ms := macrosByAreaDesc(d)
	if len(ms) != 2 || ms[0] != 1 || ms[1] != 0 {
		t.Errorf("order = %v, want [1 0] (fixed excluded)", ms)
	}
}

func TestCandidateGridInBounds(t *testing.T) {
	region := geom.NewRect(0, 0, 100, 50)
	for _, c := range candidateGrid(region, 20, 10, 8) {
		r := geom.NewRect(c.X-10, c.Y-5, 20, 10)
		if !region.ContainsRect(r) {
			t.Errorf("candidate %v places node outside region", c)
		}
	}
}

func TestBaselineOrderingOnSharedBenchmark(t *testing.T) {
	// Sanity: the analytical methods shouldn't differ by orders of
	// magnitude on the same netlist — they share the finishing pass.
	d := benchDesign(t, 13)
	dp := DreamPlaceLike(d.Clone())
	rp := RePlAceLike(d.Clone(), RePlAceConfig{Rounds: 10})
	ratio := dp.HPWL / rp.HPWL
	if math.IsNaN(ratio) || ratio < 0.2 || ratio > 5 {
		t.Errorf("suspicious HPWL ratio dreamplace/replace = %v", ratio)
	}
}

func TestSA(t *testing.T) {
	d := benchDesign(t, 14)
	random := d.HPWL()
	res := SA(d, SAConfig{Iterations: 400, Seed: 15})
	checkResult(t, "sa", d, res)
	if res.HPWL >= random {
		t.Errorf("HPWL %v did not improve over random %v", res.HPWL, random)
	}
}

func TestSADeterministic(t *testing.T) {
	r1 := SA(benchDesign(t, 16), SAConfig{Iterations: 200, Seed: 17})
	r2 := SA(benchDesign(t, 16), SAConfig{Iterations: 200, Seed: 17})
	if r1.HPWL != r2.HPWL {
		t.Errorf("SA not deterministic: %v vs %v", r1.HPWL, r2.HPWL)
	}
}

func TestSABTree(t *testing.T) {
	d := benchDesign(t, 18)
	random := d.HPWL()
	res := SABTree(d, SAConfig{Iterations: 300, Seed: 19})
	checkResult(t, "sabtree", d, res)
	if res.HPWL >= random {
		t.Errorf("HPWL %v did not improve over random %v", res.HPWL, random)
	}
}

func TestSABTreeDeterministic(t *testing.T) {
	r1 := SABTree(benchDesign(t, 20), SAConfig{Iterations: 150, Seed: 21})
	r2 := SABTree(benchDesign(t, 20), SAConfig{Iterations: 150, Seed: 21})
	if r1.HPWL != r2.HPWL {
		t.Errorf("SABTree not deterministic: %v vs %v", r1.HPWL, r2.HPWL)
	}
}

func TestMinCut(t *testing.T) {
	d := benchDesign(t, 22)
	random := d.HPWL()
	res := MinCut(d, MinCutConfig{Seed: 23})
	checkResult(t, "mincut", d, res)
	if res.HPWL >= random {
		t.Errorf("HPWL %v did not improve over random %v", res.HPWL, random)
	}
}

func TestMinCutDeterministic(t *testing.T) {
	r1 := MinCut(benchDesign(t, 24), MinCutConfig{Seed: 25})
	r2 := MinCut(benchDesign(t, 24), MinCutConfig{Seed: 25})
	if r1.HPWL != r2.HPWL {
		t.Errorf("MinCut not deterministic: %v vs %v", r1.HPWL, r2.HPWL)
	}
}
