package baseline

import (
	"context"
	"math"

	"macroplace/internal/geom"
	"macroplace/internal/gplace"
	"macroplace/internal/netlist"
	"macroplace/internal/rng"
)

// MaskPlaceConfig tunes the wiremask-driven baseline.
type MaskPlaceConfig struct {
	// Zeta is the candidate-grid resolution (default 16).
	Zeta int
	// Restarts is the number of randomised episodes; the best is kept
	// (default 8).
	Restarts int
	// Epsilon is the per-step probability of picking among the top
	// candidates at random instead of the single argmin, which is
	// what makes restarts explore (default 0.15).
	Epsilon float64
	Seed    int64
	// Ctx, when non-nil, is polled between restarts: cancellation keeps
	// the best episode so far and still runs the common finishing pass.
	// At least one episode always completes.
	Ctx context.Context
	// Progress, when set, receives each new best full-netlist HPWL
	// across restarts (pre-finish values — anytime estimates).
	Progress func(bestHPWL float64)
}

func (c MaskPlaceConfig) normalize() MaskPlaceConfig {
	if c.Zeta <= 0 {
		c.Zeta = 16
	}
	if c.Restarts <= 0 {
		c.Restarts = 8
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.15
	}
	return c
}

// MaskPlace is the MaskPlace-like baseline of Table III. The defining
// mechanism of [19] — the *wiremask*, an exact incremental-HPWL
// estimate for every candidate grid before each macro is placed — is
// reproduced exactly; the learned policy on top of it is replaced by
// restarted ε-greedy minimisation over the wiremask, which is the
// fixed point that policy converges to. Macros are placed one by one
// (no grouping), positions snap to the candidate grid, and the common
// finishing pass evaluates the result. It mutates d.
func MaskPlace(d *netlist.Design, cfg MaskPlaceConfig) Result {
	cfg = cfg.normalize()
	gplace.Place(d, gplace.Config{Mode: gplace.MoveAll, Iterations: 6})

	macros := macrosByAreaDesc(d)
	if len(macros) == 0 {
		return Finish(d)
	}
	nodeNets := d.NodeNets()
	r := rng.New(cfg.Seed).Split("maskplace")

	bestWL := math.Inf(1)
	var bestPos []geom.Point
	basePos := d.Positions()

	for restart := 0; restart < cfg.Restarts; restart++ {
		if restart > 0 && cancelled(cfg.Ctx) {
			break
		}
		d.SetPositions(basePos)
		runMaskPlaceEpisode(d, macros, nodeNets, cfg, r.Split("ep"))
		if wl := d.HPWL(); wl < bestWL {
			bestWL = wl
			bestPos = d.Positions()
			if cfg.Progress != nil {
				cfg.Progress(bestWL)
			}
		}
	}
	d.SetPositions(bestPos)
	return Finish(d)
}

// runMaskPlaceEpisode places every macro at its (ε-greedy) wiremask
// minimiser among non-overlapping candidates.
func runMaskPlaceEpisode(d *netlist.Design, macros []int, nodeNets [][]int, cfg MaskPlaceConfig, r *rng.RNG) {
	type cand struct {
		pos  geom.Point
		cost float64
	}
	var placedRects []geom.Rect
	for i := range d.Nodes {
		n := &d.Nodes[i]
		if n.Kind == netlist.Macro && n.Fixed {
			placedRects = append(placedRects, n.Rect())
		}
	}

	for _, m := range macros {
		n := &d.Nodes[m]
		var cands []cand
		for _, c := range candidateGrid(d.Region, n.W, n.H, cfg.Zeta) {
			rect := geom.NewRect(c.X-n.W/2, c.Y-n.H/2, n.W, n.H)
			// Mask: candidate must not overlap already-placed macros.
			blocked := false
			for _, pr := range placedRects {
				if rect.Overlap(pr) {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			// Wiremask value: incremental HPWL of m's nets with m at
			// the candidate (other endpoints at current positions).
			n.SetCenter(c.X, c.Y)
			cands = append(cands, cand{pos: c, cost: macroNetHPWL(d, nodeNets, m)})
		}
		if len(cands) == 0 {
			// Everything overlaps; keep the analytical position and
			// let the finishing shove resolve it.
			placedRects = append(placedRects, n.Rect())
			continue
		}
		pick := 0
		for i := range cands {
			if cands[i].cost < cands[pick].cost {
				pick = i
			}
		}
		if r.Float64() < cfg.Epsilon && len(cands) > 1 {
			// Explore among the best few candidates.
			k := 4
			if k > len(cands) {
				k = len(cands)
			}
			// Partial selection of the k smallest costs.
			idx := make([]int, len(cands))
			for i := range idx {
				idx[i] = i
			}
			for i := 0; i < k; i++ {
				for j := i + 1; j < len(idx); j++ {
					if cands[idx[j]].cost < cands[idx[i]].cost {
						idx[i], idx[j] = idx[j], idx[i]
					}
				}
			}
			pick = idx[r.Intn(k)]
		}
		n.SetCenter(cands[pick].pos.X, cands[pick].pos.Y)
		placedRects = append(placedRects, n.Rect())
	}
}
