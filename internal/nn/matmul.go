package nn

import (
	"runtime"
	"sync"
)

// matmulParallelThreshold is the operation count above which MatMul
// fans rows out across goroutines.
const matmulParallelThreshold = 1 << 20

// Cache-blocking tile sizes for the matmul kernels. A kP×kN panel of B
// (128×256 float32 = 128 KiB) is streamed against a row block of C, so
// B is re-read from cache instead of memory once n and k outgrow L1.
//
// Blocking must not change results bit-for-bit: for every output
// element c[i][j] the contributions a[i][p]·b[p][j] are accumulated in
// strictly increasing p order — the k tiles are visited in order and
// each tile accumulates into c in memory, which round-trips float32
// values exactly. Only the j loop is unrolled (distinct outputs), never
// the p loop (that would split the sum into differently-rounded
// partials). Tests pin equality against the naive oracle.
const (
	mmTileK = 128
	mmTileN = 256
)

// MatMul computes C = A·B with A of shape (m×k), B of shape (k×n),
// and C of shape (m×n), all row-major. C is overwritten.
func MatMul(c, a, b []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("nn: MatMul buffer too small")
	}
	work := m * k * n
	if work >= matmulParallelThreshold && runtime.GOMAXPROCS(0) > 1 {
		matmulParallel(c, a, b, m, k, n)
		return
	}
	matmulRows(c, a, b, k, n, 0, m)
}

// MatMulBias computes C = A·B + bias (bias[i] added to every element
// of output row i) with an optional fused ReLU epilogue — the Conv2D
// writeback, folded into the kernel so the output is swept once
// instead of once per epilogue. Bias is added after the full k sum of
// an element and ReLU is max(0, ·) of the biased value, so the result
// is bit-identical to running the epilogues as separate passes.
func MatMulBias(c, a, b, bias []float32, m, k, n int, relu bool) {
	MatMul(c, a, b, m, k, n)
	for i := 0; i < m; i++ {
		bi := bias[i]
		ci := c[i*n : i*n+n]
		if relu {
			for j, v := range ci {
				v += bi
				if v < 0 {
					v = 0
				}
				ci[j] = v
			}
		} else {
			for j := range ci {
				ci[j] += bi
			}
		}
	}
}

// matmulRows computes rows [r0, r1) of C with cache blocking over k
// and n and a 4-wide unrolled inner loop. See the tile-size comment
// for the bit-identity argument.
func matmulRows(c, a, b []float32, k, n, r0, r1 int) {
	for i := r0; i < r1; i++ {
		ci := c[i*n : i*n+n]
		for x := range ci {
			ci[x] = 0
		}
	}
	for p0 := 0; p0 < k; p0 += mmTileK {
		p1 := p0 + mmTileK
		if p1 > k {
			p1 = k
		}
		for j0 := 0; j0 < n; j0 += mmTileN {
			j1 := j0 + mmTileN
			if j1 > n {
				j1 = n
			}
			for i := r0; i < r1; i++ {
				ai := a[i*k : i*k+k]
				ci := c[i*n+j0 : i*n+j1]
				for p := p0; p < p1; p++ {
					av := ai[p]
					if av == 0 {
						continue
					}
					bp := b[p*n+j0 : p*n+j1 : p*n+j1]
					j := 0
					for ; j+4 <= len(ci); j += 4 {
						ci[j] += av * bp[j]
						ci[j+1] += av * bp[j+1]
						ci[j+2] += av * bp[j+2]
						ci[j+3] += av * bp[j+3]
					}
					for ; j < len(ci); j++ {
						ci[j] += av * bp[j]
					}
				}
			}
		}
	}
}

func matmulParallel(c, a, b []float32, m, k, n int) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		r0 := w * chunk
		r1 := r0 + chunk
		if r1 > m {
			r1 = m
		}
		if r0 >= r1 {
			break
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			matmulRows(c, a, b, k, n, r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}

// MatMulATB computes C = Aᵀ·B with A of shape (k×m), B of shape
// (k×n): the gradient-w.r.t.-input kernel of Linear/Conv backward.
// Each c[i][j] accumulates in increasing p order (tiles in order,
// memory accumulator), matching the pre-blocking kernel bit for bit.
func MatMulATB(c, a, b []float32, m, k, n int) {
	for x := 0; x < m*n; x++ {
		c[x] = 0
	}
	for p0 := 0; p0 < k; p0 += mmTileK {
		p1 := p0 + mmTileK
		if p1 > k {
			p1 = k
		}
		for j0 := 0; j0 < n; j0 += mmTileN {
			j1 := j0 + mmTileN
			if j1 > n {
				j1 = n
			}
			for p := p0; p < p1; p++ {
				ap := a[p*m : p*m+m]
				bp := b[p*n+j0 : p*n+j1 : p*n+j1]
				for i := 0; i < m; i++ {
					av := ap[i]
					if av == 0 {
						continue
					}
					ci := c[i*n+j0 : i*n+j1]
					j := 0
					for ; j+4 <= len(ci); j += 4 {
						ci[j] += av * bp[j]
						ci[j+1] += av * bp[j+1]
						ci[j+2] += av * bp[j+2]
						ci[j+3] += av * bp[j+3]
					}
					for ; j < len(ci); j++ {
						ci[j] += av * bp[j]
					}
				}
			}
		}
	}
}

// MatMulABTAcc computes C += A·Bᵀ with A of shape (m×k), B of shape
// (n×k): the weight-gradient kernel (accumulating). The j loop is
// unrolled four-wide — four independent dot products, each still a
// single accumulator over increasing p, so every c[i][j] receives the
// exact pre-unrolling sum.
func MatMulABTAcc(c, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		ai := a[i*k : i*k+k]
		ci := c[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[j*k : j*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			var s0, s1, s2, s3 float32
			for p, av := range ai {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			ci[j] += s0
			ci[j+1] += s1
			ci[j+2] += s2
			ci[j+3] += s3
		}
		for ; j < n; j++ {
			bj := b[j*k : j*k+k]
			var s float32
			for p, av := range ai {
				s += av * bj[p]
			}
			ci[j] += s
		}
	}
}
