package nn

import (
	"runtime"
	"sync"
)

// matmulParallelThreshold is the operation count above which MatMul
// fans rows out across goroutines.
const matmulParallelThreshold = 1 << 20

// MatMul computes C = A·B with A of shape (m×k), B of shape (k×n),
// and C of shape (m×n), all row-major. C is overwritten.
func MatMul(c, a, b []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("nn: MatMul buffer too small")
	}
	work := m * k * n
	if work >= matmulParallelThreshold && runtime.GOMAXPROCS(0) > 1 {
		matmulParallel(c, a, b, m, k, n)
		return
	}
	matmulRows(c, a, b, k, n, 0, m)
}

// matmulRows computes rows [r0, r1) of C. The inner loops run in
// i-k-j order so the innermost loop streams both B and C rows — the
// cache-friendly ordering for row-major data.
func matmulRows(c, a, b []float32, k, n, r0, r1 int) {
	for i := r0; i < r1; i++ {
		ci := c[i*n : i*n+n]
		for x := range ci {
			ci[x] = 0
		}
		ai := a[i*k : i*k+k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : p*n+n]
			for j := 0; j < n; j++ {
				ci[j] += av * bp[j]
			}
		}
	}
}

func matmulParallel(c, a, b []float32, m, k, n int) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		r0 := w * chunk
		r1 := r0 + chunk
		if r1 > m {
			r1 = m
		}
		if r0 >= r1 {
			break
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			matmulRows(c, a, b, k, n, r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}

// MatMulATB computes C = Aᵀ·B with A of shape (k×m), B of shape
// (k×n): the gradient-w.r.t.-input kernel of Linear/Conv backward.
func MatMulATB(c, a, b []float32, m, k, n int) {
	for x := 0; x < m*n; x++ {
		c[x] = 0
	}
	for p := 0; p < k; p++ {
		ap := a[p*m : p*m+m]
		bp := b[p*n : p*n+n]
		for i := 0; i < m; i++ {
			av := ap[i]
			if av == 0 {
				continue
			}
			ci := c[i*n : i*n+n]
			for j := 0; j < n; j++ {
				ci[j] += av * bp[j]
			}
		}
	}
}

// MatMulABTAcc computes C += A·Bᵀ with A of shape (m×k), B of shape
// (n×k): the weight-gradient kernel (accumulating).
func MatMulABTAcc(c, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		ai := a[i*k : i*k+k]
		ci := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			bj := b[j*k : j*k+k]
			var s float32
			for p := 0; p < k; p++ {
				s += ai[p] * bj[p]
			}
			ci[j] += s
		}
	}
}
