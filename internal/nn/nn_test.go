package nn

import (
	"math"
	"testing"
	"testing/quick"

	"macroplace/internal/rng"
)

// ---------------------------------------------------------------------------
// Tensor and matmul

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3)
	if x.Len() != 6 {
		t.Fatalf("Len = %d", x.Len())
	}
	x.Data[0] = 1
	c := x.Clone()
	c.Data[0] = 5
	if x.Data[0] != 1 {
		t.Error("Clone must copy data")
	}
	x.AddInPlace(c)
	if x.Data[0] != 6 {
		t.Error("AddInPlace wrong")
	}
	x.Scale(0.5)
	if x.Data[0] != 3 {
		t.Error("Scale wrong")
	}
	x.Zero()
	for _, v := range x.Data {
		if v != 0 {
			t.Error("Zero failed")
		}
	}
}

func TestFromSliceShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromSlice with wrong size should panic")
		}
	}()
	FromSlice(make([]float32, 5), 2, 3)
}

func naiveMatMul(c, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		m, k, n := r.IntRange(1, 12), r.IntRange(1, 12), r.IntRange(1, 12)
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		for i := range a {
			a[i] = float32(r.NormFloat64())
		}
		for i := range b {
			b[i] = float32(r.NormFloat64())
		}
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		MatMul(got, a, b, m, k, n)
		naiveMatMul(want, a, b, m, k, n)
		for i := range got {
			if math.Abs(float64(got[i]-want[i])) > 1e-4 {
				t.Fatalf("trial %d: got[%d]=%v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMatMulATB(t *testing.T) {
	// A (k×m) = [[1,2],[3,4]], B (k×n) = [[5],[6]] → AᵀB = [[1*5+3*6],[2*5+4*6]] = [[23],[34]].
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6}
	c := make([]float32, 2)
	MatMulATB(c, a, b, 2, 2, 1)
	if c[0] != 23 || c[1] != 34 {
		t.Errorf("ATB = %v, want [23 34]", c)
	}
}

func TestMatMulABTAccAccumulates(t *testing.T) {
	// A (m×k) = [1,2], B (n×k) = [3,4] → ABᵀ = [1*3+2*4] = [11].
	c := []float32{100}
	MatMulABTAcc(c, []float32{1, 2}, []float32{3, 4}, 1, 2, 1)
	if c[0] != 111 {
		t.Errorf("ABTAcc = %v, want 111 (accumulated)", c[0])
	}
}

// ---------------------------------------------------------------------------
// Softmax

func TestSoftmaxSumsToOne(t *testing.T) {
	out := Softmax(nil, []float32{1, 2, 3, 4})
	var sum float32
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Error("softmax must be monotone in logits")
		}
	}
	for _, v := range out {
		sum += v
	}
	if math.Abs(float64(sum-1)) > 1e-6 {
		t.Errorf("sum = %v", sum)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	out := Softmax(nil, []float32{1000, 1000, 1000})
	for _, v := range out {
		if math.Abs(float64(v)-1.0/3) > 1e-6 {
			t.Errorf("huge logits: %v", out)
		}
	}
}

func TestMaskedSoftmax(t *testing.T) {
	logits := []float32{5, 1, 1, 1}
	mask := []float32{0, 1, 0.5, 0}
	out := MaskedSoftmax(nil, logits, mask)
	if out[0] != 0 || out[3] != 0 {
		t.Error("masked entries must have zero probability")
	}
	var sum float32
	for _, v := range out {
		sum += v
	}
	if math.Abs(float64(sum-1)) > 1e-6 {
		t.Errorf("sum = %v", sum)
	}
	// Equal logits: probability proportional to mask weight.
	if math.Abs(float64(out[1]/out[2]-2)) > 1e-5 {
		t.Errorf("mask weighting: %v", out)
	}
	// All-zero mask falls back to plain softmax.
	out2 := MaskedSoftmax(nil, []float32{0, 0}, []float32{0, 0})
	if math.Abs(float64(out2[0]-0.5)) > 1e-6 {
		t.Errorf("fallback: %v", out2)
	}
}

// ---------------------------------------------------------------------------
// Gradient checks

// lossOf computes 0.5 Σ y². Its gradient w.r.t. y is y itself, which
// makes analytic/numeric comparison simple for any layer.
func lossOf(y *Tensor) float64 {
	var s float64
	for _, v := range y.Data {
		s += 0.5 * float64(v) * float64(v)
	}
	return s
}

func lossGrad(y *Tensor) *Tensor { return y.Clone() }

// checkParamGradients verifies analytic parameter gradients against
// central differences for an arbitrary layer under the quadratic loss.
func checkParamGradients(t *testing.T, layer Layer, x *Tensor, tol float64) {
	t.Helper()
	forward := func() float64 { return lossOf(layer.Forward(x.Clone())) }

	// Analytic pass.
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	y := layer.Forward(x.Clone())
	layer.Backward(lossGrad(y))

	const eps = 1e-3
	for _, p := range layer.Params() {
		// Probe a handful of weights per parameter.
		stride := len(p.W)/7 + 1
		for i := 0; i < len(p.W); i += stride {
			orig := p.W[i]
			p.W[i] = orig + eps
			lp := forward()
			p.W[i] = orig - eps
			lm := forward()
			p.W[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(p.G[i])
			if math.Abs(numeric-analytic) > tol*(1+math.Abs(numeric)) {
				t.Errorf("%s[%d]: analytic %v vs numeric %v", p.Name, i, analytic, numeric)
			}
		}
	}
}

// checkInputGradient verifies dL/dx against central differences.
func checkInputGradient(t *testing.T, layer Layer, x *Tensor, tol float64) {
	t.Helper()
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	y := layer.Forward(x.Clone())
	dx := layer.Backward(lossGrad(y))

	const eps = 1e-3
	stride := len(x.Data)/7 + 1
	for i := 0; i < len(x.Data); i += stride {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := lossOf(layer.Forward(x.Clone()))
		x.Data[i] = orig - eps
		lm := lossOf(layer.Forward(x.Clone()))
		x.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(dx.Data[i])
		if math.Abs(numeric-analytic) > tol*(1+math.Abs(numeric)) {
			t.Errorf("dx[%d]: analytic %v vs numeric %v", i, analytic, numeric)
		}
	}
}

func randTensor(r *rng.RNG, shape ...int) *Tensor {
	x := NewTensor(shape...)
	for i := range x.Data {
		x.Data[i] = float32(r.NormFloat64())
	}
	return x
}

func TestConv2DGradients(t *testing.T) {
	r := rng.New(5)
	conv := NewConv2D("c", 2, 3, 3, r)
	x := randTensor(r, 2, 5, 5)
	checkParamGradients(t, conv, x, 2e-2)
	checkInputGradient(t, conv, x, 2e-2)
}

func TestConv1x1Gradients(t *testing.T) {
	r := rng.New(6)
	conv := NewConv2D("c", 3, 2, 1, r)
	x := randTensor(r, 3, 4, 4)
	checkParamGradients(t, conv, x, 2e-2)
	checkInputGradient(t, conv, x, 2e-2)
}

func TestLinearGradients(t *testing.T) {
	r := rng.New(7)
	lin := NewLinear("l", 10, 6, r)
	x := randTensor(r, 10)
	checkParamGradients(t, lin, x, 1e-2)
	checkInputGradient(t, lin, x, 1e-2)
}

func TestBatchNormGradients(t *testing.T) {
	r := rng.New(8)
	bn := NewBatchNorm2D("bn", 2)
	// Scale/offset away from identity so gradients are non-trivial.
	bn.Gamma.W[0], bn.Gamma.W[1] = 1.5, 0.7
	bn.Beta.W[0], bn.Beta.W[1] = 0.2, -0.4
	x := randTensor(r, 2, 4, 4)
	checkParamGradients(t, bn, x, 3e-2)
	checkInputGradient(t, bn, x, 3e-2)
}

func TestReLUGradient(t *testing.T) {
	r := rng.New(9)
	relu := NewReLU()
	x := randTensor(r, 20)
	y := relu.Forward(x)
	dy := NewTensor(20)
	for i := range dy.Data {
		dy.Data[i] = 1
	}
	dx := relu.Backward(dy)
	for i := range x.Data {
		want := float32(0)
		if x.Data[i] >= 0 {
			want = 1
		}
		if dx.Data[i] != want {
			t.Errorf("dx[%d] = %v for x=%v", i, dx.Data[i], x.Data[i])
		}
		if x.Data[i] > 0 && y.Data[i] != x.Data[i] {
			t.Errorf("forward pass wrong at %d", i)
		}
		if x.Data[i] < 0 && y.Data[i] != 0 {
			t.Errorf("negative input not clamped at %d", i)
		}
	}
}

func TestResBlockGradients(t *testing.T) {
	r := rng.New(10)
	rb := NewResBlock("rb", 2, r)
	x := randTensor(r, 2, 4, 4)
	checkParamGradients(t, rb, x, 5e-2)
	checkInputGradient(t, rb, x, 5e-2)
}

func TestBatchNormRunningStats(t *testing.T) {
	r := rng.New(11)
	bn := NewBatchNorm2D("bn", 1)
	x := randTensor(r, 1, 8, 8)
	for i := range x.Data {
		x.Data[i] = x.Data[i]*2 + 3 // mean 3, std 2
	}
	for i := 0; i < 60; i++ {
		bn.Forward(x)
	}
	if math.Abs(float64(bn.RunMean[0])-3) > 0.3 {
		t.Errorf("running mean = %v, want ≈3", bn.RunMean[0])
	}
	if math.Abs(math.Sqrt(float64(bn.RunVar[0]))-2) > 0.4 {
		t.Errorf("running std = %v, want ≈2", math.Sqrt(float64(bn.RunVar[0])))
	}
	// Eval mode uses the running stats and is deterministic.
	bn.Training = false
	y1 := bn.Forward(x)
	y2 := bn.Forward(x)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("eval mode must be deterministic")
		}
	}
}

func TestEmbedding(t *testing.T) {
	r := rng.New(12)
	e := NewEmbedding("e", 4, 3, r)
	v := e.Lookup(2)
	if v.Len() != 3 {
		t.Fatalf("lookup dim = %d", v.Len())
	}
	// Out-of-range ids clamp.
	lo := e.Lookup(-5)
	hi := e.Lookup(99)
	for i := 0; i < 3; i++ {
		if lo.Data[i] != e.Weight.W[i] {
			t.Error("negative id should clamp to row 0")
		}
		if hi.Data[i] != e.Weight.W[3*3+i] {
			t.Error("large id should clamp to last row")
		}
	}
	// Gradient accumulates into the looked-up row.
	e.Lookup(1)
	g := NewTensor(3)
	g.Data[0], g.Data[1], g.Data[2] = 1, 2, 3
	e.Accumulate(g)
	if e.Weight.G[3] != 1 || e.Weight.G[4] != 2 || e.Weight.G[5] != 3 {
		t.Errorf("grad row = %v", e.Weight.G[3:6])
	}
}

// ---------------------------------------------------------------------------
// Optimizers

// quadraticParams builds a parameter holding 8 scalars with loss
// Σ (w - target)²; gradient = 2(w - target).
func optimizerConverges(t *testing.T, makeOpt func(p *Param) Optimizer) {
	t.Helper()
	p := NewParam("w", 8)
	target := []float32{1, -2, 3, 0.5, -0.25, 2, -1, 0}
	for i := range p.W {
		p.W[i] = 5
	}
	opt := makeOpt(p)
	for step := 0; step < 500; step++ {
		for i := range p.W {
			p.G[i] = 2 * (p.W[i] - target[i])
		}
		opt.Step()
	}
	for i := range p.W {
		if math.Abs(float64(p.W[i]-target[i])) > 0.05 {
			t.Errorf("w[%d] = %v, want %v", i, p.W[i], target[i])
		}
	}
}

func TestSGDConverges(t *testing.T) {
	optimizerConverges(t, func(p *Param) Optimizer { return NewSGD([]*Param{p}, 0.05, 0) })
}

func TestSGDMomentumConverges(t *testing.T) {
	optimizerConverges(t, func(p *Param) Optimizer { return NewSGD([]*Param{p}, 0.02, 0.9) })
}

func TestAdamConverges(t *testing.T) {
	optimizerConverges(t, func(p *Param) Optimizer { return NewAdam([]*Param{p}, 0.05) })
}

func TestAdamClipsGradients(t *testing.T) {
	p := NewParam("w", 2)
	a := NewAdam([]*Param{p}, 0.1)
	a.ClipNorm = 1
	p.G[0], p.G[1] = 300, 400 // norm 500 → scaled to 1
	before := [2]float32{p.W[0], p.W[1]}
	a.Step()
	// First Adam step magnitude is ≈ lr regardless, but direction must
	// match the clipped gradient ratio 3:4.
	d0 := float64(before[0] - p.W[0])
	d1 := float64(before[1] - p.W[1])
	if d0 <= 0 || d1 <= 0 {
		t.Fatal("weights should decrease")
	}
	// Gradients must be cleared after Step.
	if p.G[0] != 0 || p.G[1] != 0 {
		t.Error("Step must clear gradients")
	}
}

func TestStepClearsGradients(t *testing.T) {
	p := NewParam("w", 1)
	s := NewSGD([]*Param{p}, 0.1, 0.5)
	p.G[0] = 2
	s.Step()
	if p.G[0] != 0 {
		t.Error("SGD.Step must clear gradients")
	}
	p.G[0] = 3
	s.ZeroGrad()
	if p.G[0] != 0 {
		t.Error("ZeroGrad must clear gradients")
	}
}

// ---------------------------------------------------------------------------
// Properties

func TestIm2colCol2imAdjointProperty(t *testing.T) {
	// ⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩ — the defining adjoint identity
	// that conv backward relies on.
	r := rng.New(21)
	f := func(seed int64) bool {
		rr := rng.New(seed ^ r.Int63())
		cin, h, w, k := rr.IntRange(1, 3), rr.IntRange(2, 6), rr.IntRange(2, 6), 3
		x := make([]float32, cin*h*w)
		for i := range x {
			x[i] = float32(rr.NormFloat64())
		}
		ck := cin * k * k
		cols := make([]float32, ck*h*w)
		im2col(cols, x, cin, h, w, k, k/2)
		y := make([]float32, ck*h*w)
		for i := range y {
			y[i] = float32(rr.NormFloat64())
		}
		back := make([]float32, cin*h*w)
		col2im(back, y, cin, h, w, k, k/2)
		var lhs, rhs float64
		for i := range cols {
			lhs += float64(cols[i]) * float64(y[i])
		}
		for i := range x {
			rhs += float64(x[i]) * float64(back[i])
		}
		return math.Abs(lhs-rhs) < 1e-2*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
