package nn

import (
	"math"
	"sync"
)

// Symmetric int8 quantization for the inference GEMM.
//
// The quantized backend trades bit-identity for throughput: weights
// (the A operand — each row is one output channel of a convolution)
// are quantized with a per-row scale, activations (the B operand) with
// one per-tensor scale, and the product accumulates in int32 before a
// single dequantize-and-bias epilogue. The error model is the standard
// symmetric-uniform one: each quantized value carries at most scale/2
// absolute error, so every output element's error is bounded by
//
//	|Δc[i][j]| ≤ k · (saᵢ/2 · max|B| + sb/2 · max|Aᵢ| + saᵢ·sb/4)
//
// which the agent-level accuracy gate (policy KL, value MAE vs the
// float oracle) pins empirically. Quantization is dynamic — computed
// per call from the tensors themselves — so retrained weights can
// never be served through stale scales.

// QuantizeSymmetric quantizes src into q (len(q) ≥ len(src)) with the
// symmetric scale s = max|src|/127, returning s. Each element maps to
// clamp(round(src[i]/s), −127, 127); an all-zero src yields scale 0
// and all-zero codes. Finite inputs always produce a finite scale and
// in-range codes (FuzzQuantize pins this).
func QuantizeSymmetric(q []int8, src []float32) float32 {
	var maxAbs float32
	for _, v := range src {
		a := float32(math.Abs(float64(v)))
		if a > maxAbs {
			maxAbs = a
		}
	}
	s := maxAbs / 127
	if s == 0 {
		// Zero tensor, or maxAbs so subnormal the scale underflows:
		// either way the tensor is all-zero at int8 resolution.
		for i := range src {
			q[i] = 0
		}
		return 0
	}
	// The reciprocal is taken in float64: a subnormal float32 scale
	// would overflow 1/s to +Inf in float32 and turn zero inputs into
	// NaN codes (FuzzQuantize found this).
	inv := 1 / float64(s)
	for i, v := range src {
		r := math.RoundToEven(float64(v) * inv)
		if r > 127 {
			r = 127
		} else if r < -127 {
			r = -127
		}
		q[i] = int8(r)
	}
	return s
}

// Dequantize expands codes back to float32: dst[i] = s·q[i]. The
// round trip |src[i] − s·q[i]| is bounded by s/2 (half a quantization
// step) for in-range inputs.
func Dequantize(dst []float32, q []int8, s float32) {
	for i := range dst {
		dst[i] = s * float32(q[i])
	}
}

// int8Backend implements Backend with dynamic symmetric quantization:
// per-output-channel (per-row-of-A) weight scales, per-tensor
// activation scale, int32 accumulation. Safe for arbitrary k in this
// codebase: |qa·qb| ≤ 127², so int32 cannot overflow before
// k ≈ 1.3e5, far above any im2col depth here.
type int8Backend struct {
	scratch sync.Pool // *int8Scratch
}

type int8Scratch struct {
	qa, qb []int8
	sa     []float32
	acc    []int32
}

func (s *int8Scratch) grow(qaN, qbN, saN, accN int) {
	if cap(s.qa) < qaN {
		s.qa = make([]int8, qaN)
	}
	s.qa = s.qa[:qaN]
	if cap(s.qb) < qbN {
		s.qb = make([]int8, qbN)
	}
	s.qb = s.qb[:qbN]
	if cap(s.sa) < saN {
		s.sa = make([]float32, saN)
	}
	s.sa = s.sa[:saN]
	if cap(s.acc) < accN {
		s.acc = make([]int32, accN)
	}
	s.acc = s.acc[:accN]
}

func (be *int8Backend) Name() string { return "int8" }

func (be *int8Backend) MatMulBias(c, a, b, bias []float32, m, k, n int, relu bool) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("nn: MatMulBias buffer too small")
	}
	pool := sharedPool()
	workers := pool.n
	if workers > m {
		workers = m
	}
	if m*k*n < parallelMinWork {
		workers = 1
	}
	sc, _ := be.scratch.Get().(*int8Scratch)
	if sc == nil {
		sc = &int8Scratch{}
	}
	// Per-panel int32 accumulator rows live side by side in sc.acc so
	// concurrent panels never share a cache line's worth of logic.
	sc.grow(m*k, k*n, m, workers*n)

	// Per-output-channel weight scales: one symmetric scale per row of
	// A, i.e. per convolution output channel.
	for i := 0; i < m; i++ {
		sc.sa[i] = QuantizeSymmetric(sc.qa[i*k:(i+1)*k], a[i*k:(i+1)*k])
	}
	// Per-tensor activation scale.
	sb := QuantizeSymmetric(sc.qb, b[:k*n])

	if workers <= 1 {
		int8GemmRows(c, sc.qa, sc.sa, sc.qb, sb, bias, k, n, 0, m, sc.acc[:n], relu)
	} else {
		chunk := (m + workers - 1) / workers
		panels := (m + chunk - 1) / chunk
		pool.run(panels, func(panel int, _ *Workspace) {
			r0 := panel * chunk
			r1 := r0 + chunk
			if r1 > m {
				r1 = m
			}
			int8GemmRows(c, sc.qa, sc.sa, sc.qb, sb, bias, k, n, r0, r1, sc.acc[panel*n:(panel+1)*n], relu)
		})
	}
	be.scratch.Put(sc)
}

// int8GemmRows computes rows [r0, r1) of the quantized product with a
// shared int32 accumulator row (acc, len ≥ n) and the fused
// dequantize + bias (+ ReLU) epilogue.
func int8GemmRows(c []float32, qa []int8, sa []float32, qb []int8, sb float32, bias []float32, k, n, r0, r1 int, acc []int32, relu bool) {
	acc = acc[:n]
	for i := r0; i < r1; i++ {
		for x := range acc {
			acc[x] = 0
		}
		ai := qa[i*k : i*k+k]
		for p := 0; p < k; p++ {
			av := int32(ai[p])
			if av == 0 {
				continue
			}
			bp := qb[p*n : p*n+n : p*n+n]
			j := 0
			for ; j+4 <= n; j += 4 {
				acc[j] += av * int32(bp[j])
				acc[j+1] += av * int32(bp[j+1])
				acc[j+2] += av * int32(bp[j+2])
				acc[j+3] += av * int32(bp[j+3])
			}
			for ; j < n; j++ {
				acc[j] += av * int32(bp[j])
			}
		}
		scale := sa[i] * sb
		bi := bias[i]
		ci := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			v := float32(acc[j])*scale + bi
			if relu && v < 0 {
				v = 0
			}
			ci[j] = v
		}
	}
}
