package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears the gradients.
	Step()
	// ZeroGrad clears gradients without updating.
	ZeroGrad()
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	Params   []*Param
	LR       float32
	Momentum float32
	vel      [][]float32
}

// NewSGD builds an SGD optimizer over params.
func NewSGD(params []*Param, lr, momentum float32) *SGD {
	s := &SGD{Params: params, LR: lr, Momentum: momentum}
	if momentum > 0 {
		s.vel = make([][]float32, len(params))
		for i, p := range params {
			s.vel[i] = make([]float32, len(p.W))
		}
	}
	return s
}

// Step implements Optimizer.
func (s *SGD) Step() {
	for i, p := range s.Params {
		if s.vel != nil {
			v := s.vel[i]
			for j := range p.W {
				v[j] = s.Momentum*v[j] + p.G[j]
				p.W[j] -= s.LR * v[j]
			}
		} else {
			for j := range p.W {
				p.W[j] -= s.LR * p.G[j]
			}
		}
		p.ZeroGrad()
	}
}

// ZeroGrad implements Optimizer.
func (s *SGD) ZeroGrad() {
	for _, p := range s.Params {
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with gradient clipping.
type Adam struct {
	Params []*Param
	LR     float32
	Beta1  float32
	Beta2  float32
	Eps    float32
	// ClipNorm, when positive, rescales the global gradient norm to
	// at most this value before the update — essential for the policy
	// gradients of Eq. (5), whose magnitude varies with the advantage.
	ClipNorm float32

	t    int
	m, v [][]float32
}

// NewAdam builds an Adam optimizer with standard hyperparameters.
func NewAdam(params []*Param, lr float32) *Adam {
	a := &Adam{
		Params: params, LR: lr,
		Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, ClipNorm: 5,
		m: make([][]float32, len(params)),
		v: make([][]float32, len(params)),
	}
	for i, p := range params {
		a.m[i] = make([]float32, len(p.W))
		a.v[i] = make([]float32, len(p.W))
	}
	return a
}

// Step implements Optimizer.
func (a *Adam) Step() {
	a.t++
	if a.ClipNorm > 0 {
		var sq float64
		for _, p := range a.Params {
			for _, g := range p.G {
				sq += float64(g) * float64(g)
			}
		}
		norm := math.Sqrt(sq)
		if norm > float64(a.ClipNorm) {
			scale := float32(float64(a.ClipNorm) / norm)
			for _, p := range a.Params {
				for j := range p.G {
					p.G[j] *= scale
				}
			}
		}
	}
	bc1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	bc2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	for i, p := range a.Params {
		m, v := a.m[i], a.v[i]
		for j := range p.W {
			g := p.G[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / bc1
			vh := v[j] / bc2
			p.W[j] -= a.LR * mh / (float32(math.Sqrt(float64(vh))) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// ZeroGrad implements Optimizer.
func (a *Adam) ZeroGrad() {
	for _, p := range a.Params {
		p.ZeroGrad()
	}
}
