package nn

import (
	"math"
	"strings"
	"testing"

	"macroplace/internal/rng"
)

// forcePoolWorkers swaps the shared GEMM pool for one with n workers
// for the duration of the test, so the parallel sharding paths run
// even on a single-core host (where sharedPool() would have n=1 and
// every backend would take its serial fallback). The temporary pool's
// goroutines are shut down by closing its task channel.
func forcePoolWorkers(t *testing.T, n int) {
	t.Helper()
	sharedPool() // materialise the real pool before swapping it out
	old := sharedOnce
	sharedOnce = newWorkerPool(n)
	t.Cleanup(func() {
		close(sharedOnce.tasks)
		sharedOnce = old
	})
}

func TestBackendRegistry(t *testing.T) {
	for _, name := range Backends() {
		be, err := NewBackend(name)
		if err != nil {
			t.Fatalf("NewBackend(%q): %v", name, err)
		}
		if be.Name() != name {
			t.Fatalf("NewBackend(%q).Name() = %q", name, be.Name())
		}
	}
	be, err := NewBackend("")
	if err != nil {
		t.Fatalf("NewBackend(\"\"): %v", err)
	}
	if be.Name() != DefaultBackendName {
		t.Fatalf("empty backend name resolved to %q, want %q", be.Name(), DefaultBackendName)
	}
	if _, err := NewBackend("simd512"); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("NewBackend(unknown) error = %v", err)
	}
}

// backendShapes exercises every dispatch regime: tiny products below
// parallelMinWork (serial fallbacks), ragged tails against the 4-wide
// unroll and the tile sizes, single rows/columns, and products large
// enough to shard across the forced 4-worker pool with an uneven last
// panel.
var backendShapes = [][3]int{
	{1, 1, 1}, {1, 7, 3}, {3, 5, 7}, {13, 11, 17}, {2, 129, 3},
	{5, 257, 31}, {4, 130, 258},
	// Above parallelMinWork (1<<16): panels engage.
	{8, 96, 128}, {7, 131, 113}, {9, 257, 67}, {32, 64, 64},
}

// int8Tolerance bounds the quantized backend's error for row i by the
// error model documented in quant.go:
//
//	|Δc[i][j]| ≤ k · (saᵢ/2·max|B| + sb/2·max|Aᵢ| + saᵢ·sb/4)
func int8Tolerance(a, b []float32, i, k int) float64 {
	maxAbs := func(s []float32) float64 {
		var m float64
		for _, v := range s {
			if a := math.Abs(float64(v)); a > m {
				m = a
			}
		}
		return m
	}
	maxA := maxAbs(a[i*k : (i+1)*k])
	maxB := maxAbs(b)
	sa := maxA / 127
	sb := maxB / 127
	return float64(k) * (sa/2*maxB + sb/2*maxA + sa*sb/4)
}

// TestBackendConformance pins every registered backend against the
// naive reference on random data: the float backends ("blocked",
// "parallel") must be bit-identical (same accumulation order, one
// float32 rounding per add), the quantized backend must stay inside
// its documented error bound. Both relu regimes run for every shape.
func TestBackendConformance(t *testing.T) {
	forcePoolWorkers(t, 4)
	oracle := naiveBackend{}
	for _, name := range Backends() {
		t.Run(name, func(t *testing.T) {
			be, err := NewBackend(name)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(31)
			for _, sh := range backendShapes {
				for _, relu := range []bool{false, true} {
					m, k, n := sh[0], sh[1], sh[2]
					a := make([]float32, m*k)
					b := make([]float32, k*n)
					bias := make([]float32, m)
					fillNorm(r, a)
					fillNorm(r, b)
					fillNorm(r, bias)
					got := make([]float32, m*n)
					want := make([]float32, m*n)
					be.MatMulBias(got, a, b, bias, m, k, n, relu)
					oracle.MatMulBias(want, a, b, bias, m, k, n, relu)
					if name == "int8" {
						for i := 0; i < m; i++ {
							tol := int8Tolerance(a, b, i, k)
							for j := 0; j < n; j++ {
								d := math.Abs(float64(got[i*n+j]) - float64(want[i*n+j]))
								if d > tol || math.IsNaN(d) {
									t.Fatalf("shape %v relu=%v: |Δc[%d][%d]| = %g exceeds bound %g",
										sh, relu, i, j, d, tol)
								}
							}
						}
						continue
					}
					requireExact(t, name, sh, got, want)
				}
			}
		})
	}
}

// TestParallelBackendPanicPropagates: a short output buffer must
// surface as a panic on the calling goroutine (where the mcts batcher
// recovers it into an error), and the shared pool must keep working
// afterwards — a poisoned panel cannot kill persistent workers.
func TestParallelBackendPanicPropagates(t *testing.T) {
	forcePoolWorkers(t, 4)
	be := &parallelBackend{}
	m, k, n := 8, 96, 128
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	bias := make([]float32, m)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("short buffer did not panic")
			}
		}()
		be.MatMulBias(make([]float32, 1), a, b, bias, m, k, n, false)
	}()

	r := rng.New(7)
	fillNorm(r, a)
	fillNorm(r, b)
	fillNorm(r, bias)
	got := make([]float32, m*n)
	want := make([]float32, m*n)
	be.MatMulBias(got, a, b, bias, m, k, n, true)
	naiveBackend{}.MatMulBias(want, a, b, bias, m, k, n, true)
	requireExact(t, "parallel after panic", [3]int{m, k, n}, got, want)
}

// TestWorkspaceBackendRouting: a nil workspace and a workspace with no
// backend both take the plain serial kernel; a workspace carrying a
// backend routes through it.
func TestWorkspaceBackendRouting(t *testing.T) {
	r := rng.New(11)
	m, k, n := 5, 13, 9
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	bias := make([]float32, m)
	fillNorm(r, a)
	fillNorm(r, b)
	fillNorm(r, bias)
	want := make([]float32, m*n)
	MatMulBias(want, a, b, bias, m, k, n, true)

	var nilWS *Workspace
	got := make([]float32, m*n)
	nilWS.MatMulBias(got, a, b, bias, m, k, n, true)
	requireExact(t, "nil workspace", [3]int{m, k, n}, got, want)

	ws := &Workspace{}
	clearF32(got)
	ws.MatMulBias(got, a, b, bias, m, k, n, true)
	requireExact(t, "backend-less workspace", [3]int{m, k, n}, got, want)

	ws.Backend = naiveBackend{}
	clearF32(got)
	ws.MatMulBias(got, a, b, bias, m, k, n, true)
	requireExact(t, "naive-backed workspace", [3]int{m, k, n}, got, want)
}

func clearF32(s []float32) {
	for i := range s {
		s[i] = 0
	}
}

func TestQuantizeSymmetricRoundTrip(t *testing.T) {
	r := rng.New(5)
	src := make([]float32, 513)
	fillNorm(r, src)
	q := make([]int8, len(src))
	s := QuantizeSymmetric(q, src)
	back := make([]float32, len(src))
	Dequantize(back, q, s)
	half := float64(s) / 2
	for i := range src {
		if d := math.Abs(float64(src[i] - back[i])); d > half+1e-9 {
			t.Fatalf("element %d: round-trip error %g exceeds s/2 = %g", i, d, half)
		}
	}

	zero := make([]float32, 8)
	if s := QuantizeSymmetric(q[:8], zero); s != 0 {
		t.Fatalf("all-zero scale = %v, want 0", s)
	}
	for _, c := range q[:8] {
		if c != 0 {
			t.Fatal("all-zero input produced nonzero codes")
		}
	}
}

// FuzzQuantize: for arbitrary finite inputs the quantizer must produce
// a finite scale, codes within ±127, a round trip within half a step,
// and never a NaN/Inf on dequantize (CI runs this in the fuzz smoke).
func FuzzQuantize(f *testing.F) {
	f.Add(float32(1), float32(-2), float32(3), float32(0))
	f.Add(float32(0), float32(0), float32(0), float32(0))
	f.Add(float32(1e-38), float32(-1e38), float32(127), float32(-127))
	f.Fuzz(func(t *testing.T, a, b, c, d float32) {
		src := []float32{a, b, c, d}
		for _, v := range src {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Skip("finite inputs only: the kernels never see NaN/Inf")
			}
		}
		q := make([]int8, len(src))
		s := QuantizeSymmetric(q, src)
		if math.IsNaN(float64(s)) || math.IsInf(float64(s), 0) || s < 0 {
			t.Fatalf("scale %v is not finite non-negative", s)
		}
		back := make([]float32, len(src))
		Dequantize(back, q, s)
		for i, v := range back {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("dequantize produced %v at %d", v, i)
			}
			if q[i] > 127 || q[i] < -127 {
				t.Fatalf("code %d out of symmetric range", q[i])
			}
			// Half-step bound, slightly relaxed for subnormal scales
			// where the division itself rounds.
			bound := float64(s)/2 + 1e-6*math.Abs(float64(src[i])) + 1e-30
			if d := math.Abs(float64(src[i] - v)); d > bound {
				t.Fatalf("round-trip error %g exceeds %g (src %v)", d, bound, src[i])
			}
		}
	})
}
