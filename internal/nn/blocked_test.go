package nn

import (
	"math"
	"testing"

	"macroplace/internal/rng"
)

// The blocked/unrolled matmul kernels carry a bit-identity contract:
// for every output element the k-axis contributions accumulate in
// strictly increasing p order, exactly like the naive oracle, so
// blocking must be invisible at the float32 bit level. The tests below
// pin exact equality (not tolerance) on shapes chosen to exercise
// every tile-remainder and unroll-remainder path: primes and odd sizes
// straddling the mmTileK/mmTileN boundaries and the 4-wide unroll.

var exactShapes = [][3]int{
	{1, 1, 1}, {1, 7, 1}, {3, 5, 7}, {7, 3, 5}, {13, 11, 17},
	{2, 129, 3}, {3, 131, 259}, {5, 257, 31}, {1, 128, 256},
	{4, 130, 258}, {29, 37, 41},
}

func fillNorm(r *rng.RNG, s []float32) {
	for i := range s {
		s[i] = float32(r.NormFloat64())
	}
}

func requireExact(t *testing.T, what string, shape [3]int, got, want []float32) {
	t.Helper()
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s %v: element %d = %v (bits %x), oracle %v (bits %x)",
				what, shape, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

func TestMatMulExactlyMatchesNaiveOnOddShapes(t *testing.T) {
	r := rng.New(21)
	for _, sh := range exactShapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		fillNorm(r, a)
		fillNorm(r, b)
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		MatMul(got, a, b, m, k, n)
		naiveMatMul(want, a, b, m, k, n)
		requireExact(t, "MatMul", sh, got, want)
	}
}

func TestMatMulBiasExactlyMatchesSeparateEpilogues(t *testing.T) {
	r := rng.New(22)
	for _, sh := range exactShapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		bias := make([]float32, m)
		fillNorm(r, a)
		fillNorm(r, b)
		fillNorm(r, bias)
		for _, relu := range []bool{false, true} {
			got := make([]float32, m*n)
			MatMulBias(got, a, b, bias, m, k, n, relu)
			want := make([]float32, m*n)
			naiveMatMul(want, a, b, m, k, n)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					v := want[i*n+j] + bias[i]
					if relu && v < 0 {
						v = 0
					}
					want[i*n+j] = v
				}
			}
			requireExact(t, "MatMulBias", sh, got, want)
		}
	}
}

// naiveATB is the pre-blocking MatMulATB: contributions accumulate in
// increasing p order per output element.
func naiveATB(c, a, b []float32, m, k, n int) {
	for x := 0; x < m*n; x++ {
		c[x] = 0
	}
	for p := 0; p < k; p++ {
		for i := 0; i < m; i++ {
			av := a[p*m+i]
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				c[i*n+j] += av * b[p*n+j]
			}
		}
	}
}

func TestMatMulATBExactlyMatchesNaive(t *testing.T) {
	r := rng.New(23)
	for _, sh := range exactShapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := make([]float32, k*m)
		b := make([]float32, k*n)
		fillNorm(r, a)
		fillNorm(r, b)
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		MatMulATB(got, a, b, m, k, n)
		naiveATB(want, a, b, m, k, n)
		requireExact(t, "MatMulATB", sh, got, want)
	}
}

func TestMatMulABTAccExactlyMatchesNaive(t *testing.T) {
	r := rng.New(24)
	for _, sh := range exactShapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := make([]float32, m*k)
		b := make([]float32, n*k)
		fillNorm(r, a)
		fillNorm(r, b)
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		fillNorm(r, got) // accumulation must add onto prior contents
		copy(want, got)
		MatMulABTAcc(got, a, b, m, k, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float32
				for p := 0; p < k; p++ {
					s += a[i*k+p] * b[j*k+p]
				}
				want[i*n+j] += s
			}
		}
		requireExact(t, "MatMulABTAcc", sh, got, want)
	}
}

func TestWorkspaceVariantsBitIdenticalToAllocating(t *testing.T) {
	const cin, cout, kk, h, w, batch = 3, 4, 3, 5, 5, 3
	hw := h * w
	r := rng.New(25)
	conv := NewConv2D("c", cin, cout, kk, r)
	fillNorm(r, conv.Bias.W)
	bn := NewBatchNorm2D("b", cout)
	fillNorm(r, bn.Gamma.W)
	fillNorm(r, bn.Beta.W)
	rb := NewResBlock("r", cout, r)
	lin := NewLinear("l", hw, 7, r)

	x := make([]float32, cin*batch*hw)
	fillNorm(r, x)

	var ws Workspace
	for pass := 0; pass < 3; pass++ { // pass 0 warms the arena
		ws.Reset()
		co := conv.ForwardBatchWS(&ws, x, batch, h, w, false)
		requireExact(t, "Conv2D.ForwardBatchWS", [3]int{pass, 0, 0},
			co, conv.ForwardBatch(x, batch, h, w))

		bo := bn.ForwardBatchWS(&ws, co, batch, hw, true)
		requireExact(t, "BatchNorm2D.ForwardBatchWS+ReLU", [3]int{pass, 0, 0},
			bo, ReLUBatch(bn.ForwardBatch(co, batch, hw)))

		ro := rb.ForwardBatchWS(&ws, bo, batch, h, w)
		requireExact(t, "ResBlock.ForwardBatchWS", [3]int{pass, 0, 0},
			ro, rb.ForwardBatch(bo, batch, h, w))

		li := lin.ApplyInto(ws.Take(7), ro[:hw], true)
		requireExact(t, "Linear.ApplyInto+ReLU", [3]int{pass, 0, 0},
			li, ReLUBatch(lin.Apply(ro[:hw])))
	}
}

func TestWorkspaceZeroAllocationsAfterWarmup(t *testing.T) {
	const cin, cout, h, w, batch = 2, 3, 6, 6, 4
	r := rng.New(26)
	conv := NewConv2D("c", cin, cout, 3, r)
	x := make([]float32, cin*batch*h*w)
	fillNorm(r, x)

	var ws Workspace
	ws.Reset()
	conv.ForwardBatchWS(&ws, x, batch, h, w, true) // warm-up pass
	allocs := testing.AllocsPerRun(20, func() {
		ws.Reset()
		conv.ForwardBatchWS(&ws, x, batch, h, w, true)
	})
	if allocs != 0 {
		t.Fatalf("warm workspace pass allocates %v times, want 0", allocs)
	}
}

func TestWorkspaceNilIsValid(t *testing.T) {
	var ws *Workspace
	ws.Reset() // must not panic
	buf := ws.Take(5)
	if len(buf) != 5 {
		t.Fatalf("nil workspace Take returned len %d", len(buf))
	}
}
