package nn

import (
	"fmt"
	"runtime"
	"sync"
)

// Backend is a pluggable implementation of the fused GEMM+bias(+ReLU)
// kernel that dominates batched inference (the Conv2D im2col product).
// A Backend must be safe for concurrent use from multiple goroutines:
// the batched inference kernels are documented concurrency-safe and a
// process-wide inference server funnels many jobs through one Backend.
//
// Contract: C = A·B + bias (bias[i] broadcast over output row i) with
// an optional fused ReLU, A (m×k), B (k×n), C (m×n) row-major. The
// float backends ("blocked", "parallel") must be bit-identical to the
// naive reference: every c[i][j] accumulates its k contributions in
// strictly increasing p order, one float32 rounding per add (see the
// tile-size comment in matmul.go). The quantized backend ("int8") is
// tolerance-gated instead — conformance tests pin both regimes.
type Backend interface {
	// Name returns the registry name ("blocked", "naive", "parallel",
	// "int8") used for flag round-trips and per-backend metrics.
	Name() string
	// MatMulBias computes C = A·B + bias with an optional fused ReLU.
	MatMulBias(c, a, b, bias []float32, m, k, n int, relu bool)
}

// DefaultBackendName is the registry name resolved from an empty
// backend selection: the cache-blocked serial kernel, bit-identical to
// the pre-backend code path.
const DefaultBackendName = "blocked"

// Backends lists the registry names accepted by NewBackend, default
// first — CLI help and spec validation share this list.
func Backends() []string {
	return []string{"blocked", "naive", "parallel", "int8"}
}

// NewBackend resolves a registry name to a Backend. The empty name
// resolves to the default blocked kernel so zero-valued configs stay
// on the seed-identical path.
func NewBackend(name string) (Backend, error) {
	switch name {
	case "", "blocked":
		return blockedBackend{}, nil
	case "naive":
		return naiveBackend{}, nil
	case "parallel":
		return &parallelBackend{}, nil
	case "int8":
		return &int8Backend{}, nil
	}
	return nil, fmt.Errorf("nn: unknown backend %q (have %v)", name, Backends())
}

// blockedBackend is the existing serial cache-blocked kernel (with the
// large-product automatic fan-out of MatMul). It is the default and is
// bit-identical to calling MatMulBias directly.
type blockedBackend struct{}

func (blockedBackend) Name() string { return "blocked" }

func (blockedBackend) MatMulBias(c, a, b, bias []float32, m, k, n int, relu bool) {
	MatMulBias(c, a, b, bias, m, k, n, relu)
}

// naiveBackend is the reference triple loop: one register accumulator
// per output element, contributions in increasing p order. It performs
// the identical float32 rounding sequence as the blocked kernel (both
// round once per add, in the same p order), so the two are bit-equal;
// it exists as the conformance oracle and a debugging fallback.
type naiveBackend struct{}

func (naiveBackend) Name() string { return "naive" }

func (naiveBackend) MatMulBias(c, a, b, bias []float32, m, k, n int, relu bool) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("nn: MatMulBias buffer too small")
	}
	for i := 0; i < m; i++ {
		ai := a[i*k : i*k+k]
		ci := c[i*n : i*n+n]
		bi := bias[i]
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += ai[p] * b[p*n+j]
			}
			s += bi
			if relu && s < 0 {
				s = 0
			}
			ci[j] = s
		}
	}
}

// parallelMinWork is the m·k·n product below which the parallel
// backend runs serially: sharding a tiny GEMM across the pool costs
// more in wake-ups than the arithmetic saves.
const parallelMinWork = 1 << 16

// parallelBackend shards row panels of C across a persistent worker
// pool. Each worker runs the same cache-blocked row kernel the serial
// path uses (matmulRows is row-independent and bit-identical per row)
// plus the bias/ReLU epilogue for its own panel, so the result is
// bit-identical to the serial blocked kernel regardless of worker
// count or scheduling. Unlike MatMul's automatic fan-out it reuses
// pooled goroutines (no per-call spawn) and engages at a much smaller
// product, which is what the high-rate MCTS leaf batches need.
type parallelBackend struct{}

func (*parallelBackend) Name() string { return "parallel" }

func (*parallelBackend) MatMulBias(c, a, b, bias []float32, m, k, n int, relu bool) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("nn: MatMulBias buffer too small")
	}
	pool := sharedPool()
	if m*k*n < parallelMinWork || pool.n == 1 || m == 1 {
		MatMulBias(c, a, b, bias, m, k, n, relu)
		return
	}
	workers := pool.n
	if workers > m {
		workers = m
	}
	chunk := (m + workers - 1) / workers
	panels := (m + chunk - 1) / chunk
	pool.run(panels, func(panel int, ws *Workspace) {
		r0 := panel * chunk
		r1 := r0 + chunk
		if r1 > m {
			r1 = m
		}
		matmulRows(c, a, b, k, n, r0, r1)
		biasReluRows(c, bias, n, r0, r1, relu)
	})
}

// biasReluRows applies the bias (+ optional ReLU) epilogue to rows
// [r0, r1) of C — the same per-element operations MatMulBias performs,
// restricted to a panel.
func biasReluRows(c, bias []float32, n, r0, r1 int, relu bool) {
	for i := r0; i < r1; i++ {
		bi := bias[i]
		ci := c[i*n : i*n+n]
		if relu {
			for j, v := range ci {
				v += bi
				if v < 0 {
					v = 0
				}
				ci[j] = v
			}
		} else {
			for j := range ci {
				ci[j] += bi
			}
		}
	}
}

// workerPool is a process-wide pool of persistent GEMM workers, one
// per GOMAXPROCS at first use. Each worker owns a private Workspace so
// panel kernels that need scratch (the int8 path's packed buffers) can
// draw from it without locking or cross-worker false sharing.
type workerPool struct {
	n     int
	tasks chan poolTask
}

type poolTask struct {
	f    func(panel int, ws *Workspace)
	id   int
	wg   *sync.WaitGroup
	mu   *sync.Mutex
	pval *any
}

var (
	poolOnce   sync.Once
	sharedOnce *workerPool
)

func sharedPool() *workerPool {
	poolOnce.Do(func() {
		sharedOnce = newWorkerPool(runtime.GOMAXPROCS(0))
	})
	return sharedOnce
}

func newWorkerPool(n int) *workerPool {
	if n < 1 {
		n = 1
	}
	p := &workerPool{n: n, tasks: make(chan poolTask)}
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

func (p *workerPool) worker() {
	ws := &Workspace{}
	for t := range p.tasks {
		p.runOne(t, ws)
	}
}

// runOne executes one panel task, capturing a panic instead of
// crashing the worker goroutine: run re-raises the first panic on the
// submitting goroutine, where callers (the mcts batcher) already
// recover kernel panics into errors.
func (p *workerPool) runOne(t poolTask, ws *Workspace) {
	defer t.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			t.mu.Lock()
			if *t.pval == nil {
				*t.pval = r
			}
			t.mu.Unlock()
		}
	}()
	ws.Reset()
	t.f(t.id, ws)
}

// run dispatches panels tasks to the pool and blocks until all
// complete, re-panicking on the caller's goroutine if any panel
// panicked. Tasks must not themselves call run (the pool does not
// nest).
func (p *workerPool) run(panels int, f func(panel int, ws *Workspace)) {
	if panels <= 0 {
		return
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		pval any
	)
	wg.Add(panels)
	for i := 0; i < panels; i++ {
		p.tasks <- poolTask{f: f, id: i, wg: &wg, mu: &mu, pval: &pval}
	}
	wg.Wait()
	if pval != nil {
		panic(pval)
	}
}
