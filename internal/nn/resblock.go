package nn

import "macroplace/internal/rng"

// ResBlock is the residual unit of the paper's Fig. 2 (right-bottom):
// Conv3x3+BN, ReLU, Conv3x3+BN, skip connection, ReLU.
type ResBlock struct {
	Conv1 *Conv2D
	BN1   *BatchNorm2D
	Act1  *ReLU
	Conv2 *Conv2D
	BN2   *BatchNorm2D
	Out   *ReLU
}

// NewResBlock builds a residual block over c channels.
func NewResBlock(name string, c int, r *rng.RNG) *ResBlock {
	return &ResBlock{
		Conv1: NewConv2D(name+".conv1", c, c, 3, r),
		BN1:   NewBatchNorm2D(name+".bn1", c),
		Act1:  NewReLU(),
		Conv2: NewConv2D(name+".conv2", c, c, 3, r),
		BN2:   NewBatchNorm2D(name+".bn2", c),
		Out:   NewReLU(),
	}
}

// Params implements Layer.
func (b *ResBlock) Params() []*Param {
	var out []*Param
	out = append(out, b.Conv1.Params()...)
	out = append(out, b.BN1.Params()...)
	out = append(out, b.Conv2.Params()...)
	out = append(out, b.BN2.Params()...)
	return out
}

// Forward implements Layer.
func (b *ResBlock) Forward(x *Tensor) *Tensor {
	h := b.Conv1.Forward(x)
	h = b.BN1.Forward(h)
	h = b.Act1.Forward(h)
	h = b.Conv2.Forward(h)
	h = b.BN2.Forward(h)
	h.AddInPlace(x)
	return b.Out.Forward(h)
}

// Backward implements Layer.
func (b *ResBlock) Backward(dy *Tensor) *Tensor {
	d := b.Out.Backward(dy)
	// d flows both into the residual branch and the identity skip.
	db := b.BN2.Backward(d)
	db = b.Conv2.Backward(db)
	db = b.Act1.Backward(db)
	db = b.BN1.Backward(db)
	db = b.Conv1.Backward(db)
	db.AddInPlace(d) // skip path
	return db
}
