package nn

import (
	"testing"

	"macroplace/internal/rng"
)

// fillPattern writes a deterministic, sign-varying pattern.
func fillPattern(x []float32, seed int) {
	for i := range x {
		x[i] = float32((i*7+seed*13)%11) - 5.0
	}
}

// gatherSample extracts sample b of a channel-major [C, B, hw] batch
// into the sequential [C, hw] layout.
func gatherSample(x []float32, c, batch, hw, b int) []float32 {
	out := make([]float32, c*hw)
	for ci := 0; ci < c; ci++ {
		copy(out[ci*hw:(ci+1)*hw], x[(ci*batch+b)*hw:(ci*batch+b)*hw+hw])
	}
	return out
}

// scatterSample places a [C, hw] sample at slot b of a channel-major
// batch.
func scatterSample(dst, x []float32, c, batch, hw, b int) {
	for ci := 0; ci < c; ci++ {
		copy(dst[(ci*batch+b)*hw:(ci*batch+b)*hw+hw], x[ci*hw:(ci+1)*hw])
	}
}

// TestConv2DForwardBatchMatchesSequential: every sample of a batched
// convolution must equal the sequential Forward on that sample alone,
// bit for bit (the parallel-MCTS determinism contract).
func TestConv2DForwardBatchMatchesSequential(t *testing.T) {
	const cin, cout, k, h, w, batch = 3, 5, 3, 6, 6, 4
	hw := h * w
	conv := NewConv2D("c", cin, cout, k, rng.New(1))
	xb := make([]float32, cin*batch*hw)
	fillPattern(xb, 3)

	got := conv.ForwardBatch(xb, batch, h, w)
	for b := 0; b < batch; b++ {
		xs := gatherSample(xb, cin, batch, hw, b)
		want := conv.Forward(FromSlice(xs, cin, h, w)).Data
		gb := gatherSample(got, cout, batch, hw, b)
		for i := range want {
			if gb[i] != want[i] {
				t.Fatalf("sample %d elem %d: batch %v != seq %v", b, i, gb[i], want[i])
			}
		}
	}
}

// TestBatchNormForwardBatchMatchesSequential also checks purity: the
// batched path must not move the running statistics.
func TestBatchNormForwardBatchMatchesSequential(t *testing.T) {
	const c, hw, batch = 4, 25, 3
	bn := NewBatchNorm2D("b", c)
	// Perturb gamma/beta so the affine part is exercised.
	for i := range bn.Gamma.W {
		bn.Gamma.W[i] = 1.5 + float32(i)
		bn.Beta.W[i] = -0.25 * float32(i)
	}
	xb := make([]float32, c*batch*hw)
	fillPattern(xb, 5)

	runMean := append([]float32(nil), bn.RunMean...)
	runVar := append([]float32(nil), bn.RunVar...)
	got := bn.ForwardBatch(xb, batch, hw)
	for i := range runMean {
		if bn.RunMean[i] != runMean[i] || bn.RunVar[i] != runVar[i] {
			t.Fatal("ForwardBatch mutated running statistics")
		}
	}

	for b := 0; b < batch; b++ {
		xs := gatherSample(xb, c, batch, hw, b)
		want := bn.Forward(FromSlice(xs, c, 5, 5)).Data
		gb := gatherSample(got, c, batch, hw, b)
		for i := range want {
			if gb[i] != want[i] {
				t.Fatalf("sample %d elem %d: batch %v != seq %v", b, i, gb[i], want[i])
			}
		}
	}
}

func TestResBlockForwardBatchMatchesSequential(t *testing.T) {
	const c, h, w, batch = 4, 5, 5, 3
	hw := h * w
	rb := NewResBlock("r", c, rng.New(2))
	xb := make([]float32, c*batch*hw)
	fillPattern(xb, 7)
	// The sequential pass mutates BN running stats; run the batch first
	// (pure) and compare against fresh sequential passes.
	got := rb.ForwardBatch(xb, batch, h, w)
	for b := 0; b < batch; b++ {
		xs := gatherSample(xb, c, batch, hw, b)
		want := rb.Forward(FromSlice(xs, c, h, w)).Data
		gb := gatherSample(got, c, batch, hw, b)
		for i := range want {
			if gb[i] != want[i] {
				t.Fatalf("sample %d elem %d: batch %v != seq %v", b, i, gb[i], want[i])
			}
		}
	}
}

func TestLinearApplyMatchesForward(t *testing.T) {
	const in, out = 7, 3
	l := NewLinear("l", in, out, rng.New(3))
	x := make([]float32, in)
	fillPattern(x, 9)
	want := l.Forward(FromSlice(x, in)).Data
	got := l.Apply(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("elem %d: Apply %v != Forward %v", i, got[i], want[i])
		}
	}
}

func TestEmbeddingAtClampsAndMatchesLookup(t *testing.T) {
	e := NewEmbedding("e", 4, 6, rng.New(4))
	for _, id := range []int{-2, 0, 3, 9} {
		want := e.Lookup(id).Data
		got := e.At(id)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("id %d elem %d: At %v != Lookup %v", id, i, got[i], want[i])
			}
		}
	}
}

func TestReLUBatch(t *testing.T) {
	x := []float32{-1, 0, 2.5, -0.001, 7}
	ReLUBatch(x)
	want := []float32{0, 0, 2.5, 0, 7}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("elem %d: %v != %v", i, x[i], want[i])
		}
	}
}

// TestScatterGatherRoundTrip guards the layout helpers used above.
func TestScatterGatherRoundTrip(t *testing.T) {
	const c, hw, batch = 3, 4, 2
	x := make([]float32, c*hw)
	fillPattern(x, 1)
	buf := make([]float32, c*batch*hw)
	scatterSample(buf, x, c, batch, hw, 1)
	got := gatherSample(buf, c, batch, hw, 1)
	for i := range x {
		if got[i] != x[i] {
			t.Fatal("scatter/gather mismatch")
		}
	}
}
