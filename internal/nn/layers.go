package nn

import (
	"fmt"
	"math"

	"macroplace/internal/rng"
)

// ---------------------------------------------------------------------------
// Conv2D

// Conv2D is a stride-1, same-padding 2-D convolution over [Cin, H, W]
// feature maps, implemented as im2col + matmul.
type Conv2D struct {
	Cin, Cout, K int
	Pad          int
	Weight       *Param // [Cout][Cin*K*K]
	Bias         *Param // [Cout]

	// cached for backward
	h, w int
	cols []float32 // [Cin*K*K][H*W]
}

// NewConv2D builds a K×K convolution with same padding (pad = K/2).
func NewConv2D(name string, cin, cout, k int, r *rng.RNG) *Conv2D {
	c := &Conv2D{
		Cin: cin, Cout: cout, K: k, Pad: k / 2,
		Weight: NewParam(name+".w", cout*cin*k*k),
		Bias:   NewParam(name+".b", cout),
	}
	c.Weight.InitHe(r, cin*k*k)
	return c
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// Forward implements Layer. Input must be [Cin, H, W].
func (c *Conv2D) Forward(x *Tensor) *Tensor {
	if len(x.Shape) != 3 || x.Shape[0] != c.Cin {
		panic(fmt.Sprintf("nn: Conv2D expects [%d,H,W], got %v", c.Cin, x.Shape))
	}
	h, w := x.Shape[1], x.Shape[2]
	c.h, c.w = h, w
	ck := c.Cin * c.K * c.K
	hw := h * w
	if cap(c.cols) < ck*hw {
		c.cols = make([]float32, ck*hw)
	}
	cols := c.cols[:ck*hw]
	im2col(cols, x.Data, c.Cin, h, w, c.K, c.Pad)

	out := NewTensor(c.Cout, h, w)
	MatMulBias(out.Data, c.Weight.W, cols, c.Bias.W, c.Cout, ck, hw, false)
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(dy *Tensor) *Tensor {
	h, w := c.h, c.w
	ck := c.Cin * c.K * c.K
	hw := h * w
	cols := c.cols[:ck*hw]

	// dW += dy · colsᵀ ; db += Σ dy
	MatMulABTAcc(c.Weight.G, dy.Data, cols, c.Cout, hw, ck)
	for co := 0; co < c.Cout; co++ {
		var s float32
		row := dy.Data[co*hw : (co+1)*hw]
		for _, v := range row {
			s += v
		}
		c.Bias.G[co] += s
	}

	// dcols = Wᵀ · dy ; dx = col2im(dcols)
	dcols := make([]float32, ck*hw)
	MatMulATB(dcols, c.Weight.W, dy.Data, ck, c.Cout, hw)
	dx := NewTensor(c.Cin, h, w)
	col2im(dx.Data, dcols, c.Cin, h, w, c.K, c.Pad)
	return dx
}

// im2col lowers x[Cin,H,W] into cols[Cin*K*K, H*W] for stride-1
// convolution with the given padding.
func im2col(cols, x []float32, cin, h, w, k, pad int) {
	hw := h * w
	row := 0
	for ci := 0; ci < cin; ci++ {
		xc := x[ci*hw : (ci+1)*hw]
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				dst := cols[row*hw : (row+1)*hw]
				row++
				for oy := 0; oy < h; oy++ {
					iy := oy + ky - pad
					base := oy * w
					if iy < 0 || iy >= h {
						for ox := 0; ox < w; ox++ {
							dst[base+ox] = 0
						}
						continue
					}
					ib := iy * w
					for ox := 0; ox < w; ox++ {
						ix := ox + kx - pad
						if ix < 0 || ix >= w {
							dst[base+ox] = 0
						} else {
							dst[base+ox] = xc[ib+ix]
						}
					}
				}
			}
		}
	}
}

// col2im is the adjoint of im2col: it scatters column gradients back
// into the input gradient.
func col2im(dx, dcols []float32, cin, h, w, k, pad int) {
	hw := h * w
	row := 0
	for ci := 0; ci < cin; ci++ {
		xc := dx[ci*hw : (ci+1)*hw]
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				src := dcols[row*hw : (row+1)*hw]
				row++
				for oy := 0; oy < h; oy++ {
					iy := oy + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					base := oy * w
					ib := iy * w
					for ox := 0; ox < w; ox++ {
						ix := ox + kx - pad
						if ix >= 0 && ix < w {
							xc[ib+ix] += src[base+ox]
						}
					}
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// BatchNorm2D

// BatchNorm2D normalises each channel over its spatial extent (the
// batch dimension is 1 throughout this codebase, so statistics come
// from the H×W samples of the channel). Running statistics are kept
// for evaluation mode.
type BatchNorm2D struct {
	C        int
	Eps      float32
	Momentum float32
	Training bool

	Gamma, Beta *Param
	RunMean     []float32
	RunVar      []float32

	// cached for backward
	xhat   []float32
	invStd []float32
	h, w   int
}

// NewBatchNorm2D builds a BatchNorm over c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		C: c, Eps: 1e-5, Momentum: 0.9, Training: true,
		Gamma:   NewParam(name+".gamma", c),
		Beta:    NewParam(name+".beta", c),
		RunMean: make([]float32, c),
		RunVar:  make([]float32, c),
	}
	bn.Gamma.Fill(1)
	for i := range bn.RunVar {
		bn.RunVar[i] = 1
	}
	return bn
}

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Forward implements Layer.
func (bn *BatchNorm2D) Forward(x *Tensor) *Tensor {
	if len(x.Shape) != 3 || x.Shape[0] != bn.C {
		panic(fmt.Sprintf("nn: BatchNorm2D expects [%d,H,W], got %v", bn.C, x.Shape))
	}
	h, w := x.Shape[1], x.Shape[2]
	bn.h, bn.w = h, w
	hw := h * w
	if cap(bn.xhat) < bn.C*hw {
		bn.xhat = make([]float32, bn.C*hw)
		bn.invStd = make([]float32, bn.C)
	}
	bn.xhat = bn.xhat[:bn.C*hw]
	out := NewTensor(bn.C, h, w)
	n := float32(hw)
	for c := 0; c < bn.C; c++ {
		xc := x.Data[c*hw : (c+1)*hw]
		var mean, varv float32
		if bn.Training {
			for _, v := range xc {
				mean += v
			}
			mean /= n
			for _, v := range xc {
				d := v - mean
				varv += d * d
			}
			varv /= n
			bn.RunMean[c] = bn.Momentum*bn.RunMean[c] + (1-bn.Momentum)*mean
			bn.RunVar[c] = bn.Momentum*bn.RunVar[c] + (1-bn.Momentum)*varv
		} else {
			mean, varv = bn.RunMean[c], bn.RunVar[c]
		}
		inv := 1 / float32(math.Sqrt(float64(varv+bn.Eps)))
		bn.invStd[c] = inv
		g, b := bn.Gamma.W[c], bn.Beta.W[c]
		xh := bn.xhat[c*hw : (c+1)*hw]
		oc := out.Data[c*hw : (c+1)*hw]
		for i, v := range xc {
			xh[i] = (v - mean) * inv
			oc[i] = g*xh[i] + b
		}
	}
	return out
}

// Backward implements Layer. Assumes Forward ran in training mode.
func (bn *BatchNorm2D) Backward(dy *Tensor) *Tensor {
	h, w := bn.h, bn.w
	hw := h * w
	n := float32(hw)
	dx := NewTensor(bn.C, h, w)
	for c := 0; c < bn.C; c++ {
		dyc := dy.Data[c*hw : (c+1)*hw]
		xh := bn.xhat[c*hw : (c+1)*hw]
		var sumDy, sumDyXh float32
		for i := range dyc {
			sumDy += dyc[i]
			sumDyXh += dyc[i] * xh[i]
		}
		bn.Beta.G[c] += sumDy
		bn.Gamma.G[c] += sumDyXh
		g := bn.Gamma.W[c]
		inv := bn.invStd[c]
		dxc := dx.Data[c*hw : (c+1)*hw]
		for i := range dyc {
			dxc[i] = g * inv * (dyc[i] - sumDy/n - xh[i]*sumDyXh/n)
		}
	}
	return dx
}

// ---------------------------------------------------------------------------
// ReLU

// ReLU is an elementwise rectifier.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *Tensor) *Tensor {
	out := x.Clone()
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(dy *Tensor) *Tensor {
	dx := dy.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// ---------------------------------------------------------------------------
// Linear

// Linear is a fully-connected layer y = W·x + b over flattened inputs.
type Linear struct {
	In, Out int
	Weight  *Param // [Out][In]
	Bias    *Param // [Out]

	x []float32 // cached input
}

// NewLinear builds a fully-connected layer.
func NewLinear(name string, in, out int, r *rng.RNG) *Linear {
	l := &Linear{
		In: in, Out: out,
		Weight: NewParam(name+".w", out*in),
		Bias:   NewParam(name+".b", out),
	}
	l.Weight.InitHe(r, in)
	return l
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Forward implements Layer; any input shape with In elements works.
func (l *Linear) Forward(x *Tensor) *Tensor {
	if x.Len() != l.In {
		panic(fmt.Sprintf("nn: Linear expects %d inputs, got %d", l.In, x.Len()))
	}
	if cap(l.x) < l.In {
		l.x = make([]float32, l.In)
	}
	l.x = l.x[:l.In]
	copy(l.x, x.Data)
	out := NewTensor(l.Out)
	for o := 0; o < l.Out; o++ {
		row := l.Weight.W[o*l.In : (o+1)*l.In]
		s := l.Bias.W[o]
		for i, v := range x.Data {
			s += row[i] * v
		}
		out.Data[o] = s
	}
	return out
}

// Backward implements Layer.
func (l *Linear) Backward(dy *Tensor) *Tensor {
	dx := NewTensor(l.In)
	for o := 0; o < l.Out; o++ {
		g := dy.Data[o]
		l.Bias.G[o] += g
		if g == 0 {
			continue
		}
		wrow := l.Weight.W[o*l.In : (o+1)*l.In]
		grow := l.Weight.G[o*l.In : (o+1)*l.In]
		for i := 0; i < l.In; i++ {
			grow[i] += g * l.x[i]
			dx.Data[i] += g * wrow[i]
		}
	}
	return dx
}

// ---------------------------------------------------------------------------
// Embedding

// Embedding maps an integer id to a learnable D-vector; the paper uses
// it as the position embedding of the sequence number t.
type Embedding struct {
	N, D   int
	Weight *Param // [N][D]
	last   int
}

// NewEmbedding builds an embedding table with n rows of d dims.
func NewEmbedding(name string, n, d int, r *rng.RNG) *Embedding {
	e := &Embedding{N: n, D: d, Weight: NewParam(name+".w", n*d)}
	e.Weight.InitUniform(r, 0.05)
	return e
}

// Params returns the learnable table.
func (e *Embedding) Params() []*Param { return []*Param{e.Weight} }

// Lookup returns row id as a tensor (data aliases the table).
func (e *Embedding) Lookup(id int) *Tensor {
	if id < 0 {
		id = 0
	}
	if id >= e.N {
		id = e.N - 1
	}
	e.last = id
	out := NewTensor(e.D)
	copy(out.Data, e.Weight.W[id*e.D:(id+1)*e.D])
	return out
}

// Accumulate adds the gradient for the most recent Lookup.
func (e *Embedding) Accumulate(dy *Tensor) {
	row := e.Weight.G[e.last*e.D : (e.last+1)*e.D]
	for i := range row {
		row[i] += dy.Data[i]
	}
}

// ---------------------------------------------------------------------------
// Softmax helpers

// Softmax writes the softmax of logits into out (allocating when out
// is nil) and returns it. Numerically stabilised.
func Softmax(out, logits []float32) []float32 {
	if out == nil {
		out = make([]float32, len(logits))
	}
	maxv := float32(math.Inf(-1))
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float32
	for i, v := range logits {
		e := float32(math.Exp(float64(v - maxv)))
		out[i] = e
		sum += e
	}
	if sum > 0 {
		inv := 1 / sum
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}

// MaskedSoftmax computes softmax over the entries whose mask value is
// positive, weighting probabilities by the mask as the paper's policy
// head does (logits are multiplied by the availability map s_a before
// the softmax). Entries with mask <= 0 get probability 0. If no entry
// has positive mask, the result is the plain softmax.
func MaskedSoftmax(out, logits, mask []float32) []float32 {
	if out == nil {
		out = make([]float32, len(logits))
	}
	any := false
	for _, m := range mask {
		if m > 0 {
			any = true
			break
		}
	}
	if !any {
		return Softmax(out, logits)
	}
	maxv := float32(math.Inf(-1))
	for i, v := range logits {
		if mask[i] > 0 && v > maxv {
			maxv = v
		}
	}
	var sum float32
	for i, v := range logits {
		if mask[i] > 0 {
			e := mask[i] * float32(math.Exp(float64(v-maxv)))
			out[i] = e
			sum += e
		} else {
			out[i] = 0
		}
	}
	if sum > 0 {
		inv := 1 / sum
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}
