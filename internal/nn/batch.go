package nn

import "math"

// Batched inference kernels.
//
// The training path (Forward/Backward) keeps per-layer caches and is
// therefore stateful: one goroutine, one sample at a time. The batched
// kernels below are the inference-only counterparts used by the MCTS
// evaluation batcher: they are pure functions of the layer weights —
// no caches, no BatchNorm running-statistic updates — so they are safe
// to call concurrently, and they coalesce a whole batch into single
// MatMul calls large enough to engage the parallel matmul kernel.
//
// Batched feature maps are stored channel-major over the batch:
// element (c, b, i) of a [C, B, H*W] map lives at x[(c*B+b)*hw + i].
// This layout keeps every per-channel operation (convolution bias,
// BatchNorm, the im2col rows) contiguous and makes the batched
// convolution a single [Cout × Cin·K²] · [Cin·K² × B·H·W] product.
//
// Per sample, every kernel performs the same float32 operations in the
// same order as its sequential Forward counterpart, so a batched
// evaluation is bit-identical to evaluating each sample alone (the
// MCTS determinism tests rely on this).
//
// Every kernel comes in two forms: a WS variant that draws its
// intermediate buffers from a Workspace arena (zero heap allocations
// once the arena is warm), and the original allocating form, kept as a
// thin nil-workspace wrapper. Fused epilogues (the convolution bias,
// the ReLU after BatchNorm, the residual add+ReLU) sweep the output
// once instead of once per epilogue; each fused form performs the
// identical float operations in the identical order, so fusion is
// invisible at the bit level.

// ForwardBatch applies the convolution to a batch of [Cin, H, W]
// feature maps in channel-major batch layout. It is pure: the backward
// caches of Forward are untouched.
func (c *Conv2D) ForwardBatch(x []float32, batch, h, w int) []float32 {
	return c.ForwardBatchWS(nil, x, batch, h, w, false)
}

// ForwardBatchWS is ForwardBatch with the im2col and output buffers
// drawn from ws (nil ws allocates) and an optional fused ReLU on the
// biased output.
func (c *Conv2D) ForwardBatchWS(ws *Workspace, x []float32, batch, h, w int, relu bool) []float32 {
	hw := h * w
	if len(x) < c.Cin*batch*hw {
		panic("nn: Conv2D.ForwardBatch input too small")
	}
	ck := c.Cin * c.K * c.K
	cols := ws.Take(ck * batch * hw)
	im2colBatch(cols, x, c.Cin, batch, h, w, c.K, c.Pad)

	out := ws.Take(c.Cout * batch * hw)
	ws.MatMulBias(out, c.Weight.W, cols, c.Bias.W, c.Cout, ck, batch*hw, relu)
	return out
}

// im2colBatch lowers a channel-major batch [Cin, B, H*W] into
// cols[Cin*K*K, B*H*W]: sample b of row r occupies columns
// [b*hw, (b+1)*hw), so the per-sample columns are exactly the ones
// im2col produces for that sample alone.
func im2colBatch(cols, x []float32, cin, batch, h, w, k, pad int) {
	hw := h * w
	bhw := batch * hw
	row := 0
	for ci := 0; ci < cin; ci++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				for b := 0; b < batch; b++ {
					xc := x[(ci*batch+b)*hw : (ci*batch+b+1)*hw]
					dst := cols[row*bhw+b*hw : row*bhw+(b+1)*hw]
					for oy := 0; oy < h; oy++ {
						iy := oy + ky - pad
						base := oy * w
						if iy < 0 || iy >= h {
							for ox := 0; ox < w; ox++ {
								dst[base+ox] = 0
							}
							continue
						}
						ib := iy * w
						for ox := 0; ox < w; ox++ {
							ix := ox + kx - pad
							if ix < 0 || ix >= w {
								dst[base+ox] = 0
							} else {
								dst[base+ox] = xc[ib+ix]
							}
						}
					}
				}
				row++
			}
		}
	}
}

// ForwardBatch normalises a channel-major batch with the same
// per-sample spatial statistics the training-mode Forward uses (the
// batch dimension is 1 throughout the sequential code, so statistics
// always come from one sample's H×W extent). Unlike Forward it never
// touches RunMean/RunVar, which keeps it pure and concurrency-safe;
// the per-sample outputs are identical because training-mode outputs
// never depend on the running statistics.
func (bn *BatchNorm2D) ForwardBatch(x []float32, batch, hw int) []float32 {
	return bn.ForwardBatchWS(nil, x, batch, hw, false)
}

// ForwardBatchWS is ForwardBatch with the output drawn from ws (nil ws
// allocates) and an optional fused ReLU: max(0, ·) of the identical
// normalised value, bit-identical to a separate ReLUBatch sweep.
func (bn *BatchNorm2D) ForwardBatchWS(ws *Workspace, x []float32, batch, hw int, relu bool) []float32 {
	if len(x) < bn.C*batch*hw {
		panic("nn: BatchNorm2D.ForwardBatch input too small")
	}
	out := ws.Take(bn.C * batch * hw)
	n := float32(hw)
	for c := 0; c < bn.C; c++ {
		g, b := bn.Gamma.W[c], bn.Beta.W[c]
		for s := 0; s < batch; s++ {
			xc := x[(c*batch+s)*hw : (c*batch+s+1)*hw]
			var mean, varv float32
			for _, v := range xc {
				mean += v
			}
			mean /= n
			for _, v := range xc {
				d := v - mean
				varv += d * d
			}
			varv /= n
			// Same float64 round trip as the sequential Forward so the
			// batched output is bit-identical per sample.
			inv := 1 / float32(math.Sqrt(float64(varv+bn.Eps)))
			oc := out[(c*batch+s)*hw : (c*batch+s+1)*hw]
			for i, v := range xc {
				// Same association as Forward (g·x̂ + b with
				// x̂ = (v−mean)·inv): float multiplication is not
				// associative and the contract is bit-identity.
				o := g*((v-mean)*inv) + b
				if relu && o < 0 {
					o = 0
				}
				oc[i] = o
			}
		}
	}
	return out
}

// ReLUBatch rectifies in place and returns x (pure w.r.t. layer
// state: no backward mask is recorded).
func ReLUBatch(x []float32) []float32 {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
	return x
}

// AddReLUBatch computes out[i] = max(0, out[i]+x[i]) in place: the
// residual-block skip connection with its ReLU fused into one sweep.
func AddReLUBatch(out, x []float32) []float32 {
	for i, v := range out {
		v += x[i]
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// ForwardBatch applies the residual block to a channel-major batch.
func (b *ResBlock) ForwardBatch(x []float32, batch, h, w int) []float32 {
	return b.ForwardBatchWS(nil, x, batch, h, w)
}

// ForwardBatchWS is ForwardBatch over a Workspace, with the first
// BN+ReLU and the skip add+ReLU fused.
func (b *ResBlock) ForwardBatchWS(ws *Workspace, x []float32, batch, h, w int) []float32 {
	hw := h * w
	out := b.Conv1.ForwardBatchWS(ws, x, batch, h, w, false)
	out = b.BN1.ForwardBatchWS(ws, out, batch, hw, true)
	out = b.Conv2.ForwardBatchWS(ws, out, batch, h, w, false)
	out = b.BN2.ForwardBatchWS(ws, out, batch, hw, false)
	return AddReLUBatch(out, x)
}

// Apply computes W·x + b without recording the backward cache: the
// pure single-sample counterpart of Forward, with the identical
// accumulation order.
func (l *Linear) Apply(x []float32) []float32 {
	return l.ApplyInto(make([]float32, l.Out), x, false)
}

// ApplyInto is Apply writing into dst (length l.Out), with an optional
// fused ReLU on each output — max(0, ·) of the identical sum, so the
// fusion is bit-invisible. Returns dst.
func (l *Linear) ApplyInto(dst, x []float32, relu bool) []float32 {
	if len(x) != l.In {
		panic("nn: Linear.Apply input length mismatch")
	}
	if len(dst) != l.Out {
		panic("nn: Linear.ApplyInto dst length mismatch")
	}
	for o := 0; o < l.Out; o++ {
		row := l.Weight.W[o*l.In : (o+1)*l.In]
		s := l.Bias.W[o]
		for i, v := range x {
			s += row[i] * v
		}
		if relu && s < 0 {
			s = 0
		}
		dst[o] = s
	}
	return dst
}

// At returns row id of the table (clamped like Lookup) without
// recording the gradient target. The slice aliases the weights: it is
// read-only.
func (e *Embedding) At(id int) []float32 {
	if id < 0 {
		id = 0
	}
	if id >= e.N {
		id = e.N - 1
	}
	return e.Weight.W[id*e.D : (id+1)*e.D]
}
