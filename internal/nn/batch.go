package nn

import "math"

// Batched inference kernels.
//
// The training path (Forward/Backward) keeps per-layer caches and is
// therefore stateful: one goroutine, one sample at a time. The batched
// kernels below are the inference-only counterparts used by the MCTS
// evaluation batcher: they are pure functions of the layer weights —
// no caches, no BatchNorm running-statistic updates — so they are safe
// to call concurrently, and they coalesce a whole batch into single
// MatMul calls large enough to engage the parallel matmul kernel.
//
// Batched feature maps are stored channel-major over the batch:
// element (c, b, i) of a [C, B, H*W] map lives at x[(c*B+b)*hw + i].
// This layout keeps every per-channel operation (convolution bias,
// BatchNorm, the im2col rows) contiguous and makes the batched
// convolution a single [Cout × Cin·K²] · [Cin·K² × B·H·W] product.
//
// Per sample, every kernel performs the same float32 operations in the
// same order as its sequential Forward counterpart, so a batched
// evaluation is bit-identical to evaluating each sample alone (the
// MCTS determinism tests rely on this).

// ForwardBatch applies the convolution to a batch of [Cin, H, W]
// feature maps in channel-major batch layout. It is pure: the backward
// caches of Forward are untouched.
func (c *Conv2D) ForwardBatch(x []float32, batch, h, w int) []float32 {
	hw := h * w
	if len(x) < c.Cin*batch*hw {
		panic("nn: Conv2D.ForwardBatch input too small")
	}
	ck := c.Cin * c.K * c.K
	cols := make([]float32, ck*batch*hw)
	im2colBatch(cols, x, c.Cin, batch, h, w, c.K, c.Pad)

	out := make([]float32, c.Cout*batch*hw)
	MatMul(out, c.Weight.W, cols, c.Cout, ck, batch*hw)
	bhw := batch * hw
	for co := 0; co < c.Cout; co++ {
		b := c.Bias.W[co]
		row := out[co*bhw : (co+1)*bhw]
		for i := range row {
			row[i] += b
		}
	}
	return out
}

// im2colBatch lowers a channel-major batch [Cin, B, H*W] into
// cols[Cin*K*K, B*H*W]: sample b of row r occupies columns
// [b*hw, (b+1)*hw), so the per-sample columns are exactly the ones
// im2col produces for that sample alone.
func im2colBatch(cols, x []float32, cin, batch, h, w, k, pad int) {
	hw := h * w
	bhw := batch * hw
	row := 0
	for ci := 0; ci < cin; ci++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				for b := 0; b < batch; b++ {
					xc := x[(ci*batch+b)*hw : (ci*batch+b+1)*hw]
					dst := cols[row*bhw+b*hw : row*bhw+(b+1)*hw]
					for oy := 0; oy < h; oy++ {
						iy := oy + ky - pad
						base := oy * w
						if iy < 0 || iy >= h {
							for ox := 0; ox < w; ox++ {
								dst[base+ox] = 0
							}
							continue
						}
						ib := iy * w
						for ox := 0; ox < w; ox++ {
							ix := ox + kx - pad
							if ix < 0 || ix >= w {
								dst[base+ox] = 0
							} else {
								dst[base+ox] = xc[ib+ix]
							}
						}
					}
				}
				row++
			}
		}
	}
}

// ForwardBatch normalises a channel-major batch with the same
// per-sample spatial statistics the training-mode Forward uses (the
// batch dimension is 1 throughout the sequential code, so statistics
// always come from one sample's H×W extent). Unlike Forward it never
// touches RunMean/RunVar, which keeps it pure and concurrency-safe;
// the per-sample outputs are identical because training-mode outputs
// never depend on the running statistics.
func (bn *BatchNorm2D) ForwardBatch(x []float32, batch, hw int) []float32 {
	if len(x) < bn.C*batch*hw {
		panic("nn: BatchNorm2D.ForwardBatch input too small")
	}
	out := make([]float32, bn.C*batch*hw)
	n := float32(hw)
	for c := 0; c < bn.C; c++ {
		g, b := bn.Gamma.W[c], bn.Beta.W[c]
		for s := 0; s < batch; s++ {
			xc := x[(c*batch+s)*hw : (c*batch+s+1)*hw]
			var mean, varv float32
			for _, v := range xc {
				mean += v
			}
			mean /= n
			for _, v := range xc {
				d := v - mean
				varv += d * d
			}
			varv /= n
			// Same float64 round trip as the sequential Forward so the
			// batched output is bit-identical per sample.
			inv := 1 / float32(math.Sqrt(float64(varv+bn.Eps)))
			oc := out[(c*batch+s)*hw : (c*batch+s+1)*hw]
			for i, v := range xc {
				// Same association as Forward (g·x̂ + b with
				// x̂ = (v−mean)·inv): float multiplication is not
				// associative and the contract is bit-identity.
				oc[i] = g*((v-mean)*inv) + b
			}
		}
	}
	return out
}

// ReLUBatch rectifies in place and returns x (pure w.r.t. layer
// state: no backward mask is recorded).
func ReLUBatch(x []float32) []float32 {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
	return x
}

// ForwardBatch applies the residual block to a channel-major batch.
func (b *ResBlock) ForwardBatch(x []float32, batch, h, w int) []float32 {
	hw := h * w
	out := b.Conv1.ForwardBatch(x, batch, h, w)
	out = b.BN1.ForwardBatch(out, batch, hw)
	ReLUBatch(out)
	out = b.Conv2.ForwardBatch(out, batch, h, w)
	out = b.BN2.ForwardBatch(out, batch, hw)
	for i := range out {
		out[i] += x[i]
	}
	return ReLUBatch(out)
}

// Apply computes W·x + b without recording the backward cache: the
// pure single-sample counterpart of Forward, with the identical
// accumulation order.
func (l *Linear) Apply(x []float32) []float32 {
	if len(x) != l.In {
		panic("nn: Linear.Apply input length mismatch")
	}
	out := make([]float32, l.Out)
	for o := 0; o < l.Out; o++ {
		row := l.Weight.W[o*l.In : (o+1)*l.In]
		s := l.Bias.W[o]
		for i, v := range x {
			s += row[i] * v
		}
		out[o] = s
	}
	return out
}

// At returns row id of the table (clamped like Lookup) without
// recording the gradient target. The slice aliases the weights: it is
// read-only.
func (e *Embedding) At(id int) []float32 {
	if id < 0 {
		id = 0
	}
	if id >= e.N {
		id = e.N - 1
	}
	return e.Weight.W[id*e.D : (id+1)*e.D]
}
