package nn

// Workspace is a bump-pointer float32 arena for the pure inference
// kernels: a forward pass Takes every intermediate buffer from it in a
// deterministic order, and the caller Resets it before the next pass.
//
// The arena grows to the high-water mark of the previous pass: the
// first pass over a new shape allocates (every Take that misses falls
// back to make), and every following pass of the same or smaller shape
// performs zero heap allocations. Buffers handed out by Take are NOT
// zeroed — every inference kernel fully overwrites its destination, so
// recycled garbage can never leak into an output (tests pin the
// with-workspace results bit-identical to the allocating kernels).
//
// A nil *Workspace is valid and degrades every Take to a plain make,
// which keeps the allocating entry points (ForwardBatch and friends)
// as thin wrappers over the WS variants.
type Workspace struct {
	arena []float32
	off   int // bump pointer into arena
	need  int // high-water mark of the current pass

	// Backend selects the GEMM implementation used by the batched
	// kernels that draw from this workspace. Nil (and a nil workspace)
	// routes to the default blocked kernel — the exact pre-backend code
	// path, with zero dispatch overhead beyond one nil check.
	Backend Backend
}

// Reset recycles the arena for a new pass, growing it to the previous
// pass's high-water mark so the new pass can run allocation-free.
func (w *Workspace) Reset() {
	if w == nil {
		return
	}
	if w.need > len(w.arena) {
		w.arena = make([]float32, w.need)
	}
	w.off = 0
	w.need = 0
}

// Take returns a length-n float32 buffer with undefined contents. The
// buffer is valid until the next Reset; its capacity is clipped so an
// append can never bleed into a neighbouring Take.
func (w *Workspace) Take(n int) []float32 {
	if w == nil {
		return make([]float32, n)
	}
	w.need += n
	if w.off+n > len(w.arena) {
		// Warm-up miss: serve from the heap now, grow at the next Reset.
		return make([]float32, n)
	}
	s := w.arena[w.off : w.off+n : w.off+n]
	w.off += n
	return s
}

// MatMulBias routes the fused GEMM epilogue through the workspace's
// Backend; a nil workspace or nil Backend runs the default blocked
// kernel, bit-identical to calling MatMulBias directly.
func (w *Workspace) MatMulBias(c, a, b, bias []float32, m, k, n int, relu bool) {
	if w == nil || w.Backend == nil {
		MatMulBias(c, a, b, bias, m, k, n, relu)
		return
	}
	w.Backend.MatMulBias(c, a, b, bias, m, k, n, relu)
}
