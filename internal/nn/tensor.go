// Package nn is a small, dependency-free neural-network library built
// for the agent of Fig. 2 / Table I of the paper: float32 tensors,
// im2col Conv2D, spatial BatchNorm, ReLU, Linear, embeddings, residual
// blocks, hand-wired backpropagation, and SGD/Adam optimizers.
//
// The library deliberately avoids a general autograd graph: the agent
// architecture is static, so each layer exposes Forward/Backward and
// the composite network wires them explicitly. All layers operate on
// a batch size of 1 — the Actor–Critic update of the paper accumulates
// gradients over the steps of 30 episodes, which maps naturally onto
// repeated single-sample backward passes. BatchNorm therefore
// normalises over the spatial extent (H×W), which is well-defined for
// the 16×16 feature maps involved.
package nn

import (
	"fmt"
	"math"

	"macroplace/internal/rng"
)

// Tensor is a dense float32 tensor with row-major layout. Feature
// maps use [C, H, W] order.
type Tensor struct {
	Shape []int
	Data  []float32
}

// NewTensor allocates a zero tensor of the given shape.
func NewTensor(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("nn: non-positive dim %d in shape %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data (not copied) in a tensor of the given shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("nn: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the element count.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// AddInPlace accumulates o into t elementwise.
func (t *Tensor) AddInPlace(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("nn: AddInPlace size mismatch")
	}
	for i := range t.Data {
		t.Data[i] += o.Data[i]
	}
}

// Scale multiplies every element by f.
func (t *Tensor) Scale(f float32) {
	for i := range t.Data {
		t.Data[i] *= f
	}
}

// Param is a learnable parameter with its gradient accumulator.
type Param struct {
	Name string
	W    []float32
	G    []float32
}

// NewParam allocates a parameter of n elements.
func NewParam(name string, n int) *Param {
	return &Param{Name: name, W: make([]float32, n), G: make([]float32, n)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// InitHe fills p with He-normal values scaled for fanIn, the standard
// initialisation for ReLU networks.
func (p *Param) InitHe(r *rng.RNG, fanIn int) {
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	for i := range p.W {
		p.W[i] = float32(r.NormFloat64()) * std
	}
}

// InitUniform fills p uniformly in [-a, a].
func (p *Param) InitUniform(r *rng.RNG, a float64) {
	for i := range p.W {
		p.W[i] = float32(r.Range(-a, a))
	}
}

// Fill sets every weight to v.
func (p *Param) Fill(v float32) {
	for i := range p.W {
		p.W[i] = v
	}
}

// Layer is the common shape of all trainable modules.
type Layer interface {
	// Forward consumes the input and returns the output; the layer
	// caches whatever it needs for Backward.
	Forward(x *Tensor) *Tensor
	// Backward consumes d(out) and returns d(in), accumulating
	// parameter gradients.
	Backward(dy *Tensor) *Tensor
	// Params returns the layer's learnable parameters.
	Params() []*Param
}

// SetTraining toggles train/eval behaviour on layers that distinguish
// them (BatchNorm). It walks the provided layers.
func SetTraining(training bool, layers ...Layer) {
	for _, l := range layers {
		if bn, ok := l.(*BatchNorm2D); ok {
			bn.Training = training
		}
	}
}
