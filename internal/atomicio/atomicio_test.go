package atomicio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFileBytes(path, []byte("gen1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("gen2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "gen2" {
		t.Errorf("content = %q, want gen2", got)
	}
}

func TestWriteFileKeepsOldContentOnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := WriteFileBytes(path, []byte("previous generation")); err != nil {
		t.Fatal(err)
	}
	// A writer that emits partial content and then fails models a crash
	// mid-write: the destination must still hold the previous
	// generation in full.
	boom := errors.New("disk gone")
	err := WriteFile(path, func(w io.Writer) error {
		if _, werr := w.Write([]byte("half-written gar")); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped disk error", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "previous generation" {
		t.Errorf("destination corrupted: %q", got)
	}
}

func TestWriteFileCleansUpTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	_ = WriteFile(path, func(w io.Writer) error { return fmt.Errorf("fail") })
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("stale temp file %s left behind", e.Name())
		}
	}
}

func TestWriteFileMissingDirErrors(t *testing.T) {
	err := WriteFileBytes(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"))
	if err == nil {
		t.Error("expected error for missing parent directory")
	}
}
