// Package atomicio provides crash-safe file replacement for every
// checkpoint and result artifact in this repository. A bare os.Create
// truncates the destination before the first byte is written, so a
// crash (or an injected fault) mid-write destroys the previous good
// generation; WriteFile instead stages the content in a temporary file
// in the same directory, fsyncs it, and renames it over the
// destination, so the destination always holds either the old complete
// content or the new complete content — never a torn mixture.
//
// scripts/check.sh enforces that production checkpoint/result writers
// go through this package rather than calling os.Create directly.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write.
// The content is staged in a temporary sibling file, flushed with
// Sync, closed, and renamed onto path; on any error (including one
// returned by write itself) the temporary file is removed and path is
// left untouched.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	return nil
}

// WriteFileBytes is WriteFile for pre-rendered content.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
