package cluster

import (
	"reflect"
	"testing"

	"macroplace/internal/gen"
	"macroplace/internal/geom"
	"macroplace/internal/netlist"
)

// smallDesign builds four macros and some cells with controlled
// hierarchy and connectivity.
func smallDesign() *netlist.Design {
	d := &netlist.Design{Name: "s", Region: geom.NewRect(0, 0, 160, 160)}
	// Two pairs of macros: (m0, m1) close together, same hierarchy,
	// connected; (m2, m3) far away from the first pair.
	d.AddNode(netlist.Node{Name: "m0", Kind: netlist.Macro, W: 10, H: 10, X: 10, Y: 10, Hier: "top/a"})
	d.AddNode(netlist.Node{Name: "m1", Kind: netlist.Macro, W: 10, H: 10, X: 25, Y: 10, Hier: "top/a"})
	d.AddNode(netlist.Node{Name: "m2", Kind: netlist.Macro, W: 10, H: 10, X: 120, Y: 120, Hier: "top/b"})
	d.AddNode(netlist.Node{Name: "m3", Kind: netlist.Macro, W: 10, H: 10, X: 135, Y: 120, Hier: "top/b"})
	// Cells.
	d.AddNode(netlist.Node{Name: "c0", Kind: netlist.Cell, W: 2, H: 2, X: 12, Y: 30, Hier: "top/a"})
	d.AddNode(netlist.Node{Name: "c1", Kind: netlist.Cell, W: 2, H: 2, X: 16, Y: 30, Hier: "top/a"})
	d.AddNode(netlist.Node{Name: "c2", Kind: netlist.Cell, W: 2, H: 2, X: 130, Y: 100, Hier: "top/b"})
	// Nets: macro pair connectivity + cell pair.
	d.AddNet(netlist.Net{Name: "n0", Pins: []netlist.Pin{{Node: 0}, {Node: 1}}})
	d.AddNet(netlist.Net{Name: "n1", Pins: []netlist.Pin{{Node: 2}, {Node: 3}}})
	d.AddNet(netlist.Net{Name: "n2", Pins: []netlist.Pin{{Node: 4}, {Node: 5}}})
	d.AddNet(netlist.Net{Name: "n3", Pins: []netlist.Pin{{Node: 1}, {Node: 4}}})
	return d
}

func TestBuildGroupsNearbyConnectedMacros(t *testing.T) {
	d := smallDesign()
	// Grid area between one macro (100) and a merged pair (200): pairs
	// merge, but two grid-exceeding pair-groups are never merged
	// further (the paper's size-based termination).
	p := DefaultParams(150)
	c := Build(d, p)
	if len(c.MacroGroups) != 2 {
		t.Fatalf("macro groups = %d, want 2 (two pairs)", len(c.MacroGroups))
	}
	// Each pair must land in one group.
	g0 := c.GroupOf[0]
	if c.GroupOf[1] != g0 {
		t.Error("m0 and m1 should share a group")
	}
	g2 := c.GroupOf[2]
	if c.GroupOf[3] != g2 {
		t.Error("m2 and m3 should share a group")
	}
	if g0 == g2 {
		t.Error("the two distant pairs must not merge")
	}
}

func TestGroupHierIsCommonPrefix(t *testing.T) {
	d := smallDesign()
	c := Build(d, DefaultParams(150))
	for _, g := range c.MacroGroups {
		if len(g.Members) == 2 && g.Hier != "top/a" && g.Hier != "top/b" {
			t.Errorf("group hier = %q, want a common prefix", g.Hier)
		}
	}
}

func TestGridAreaStopsMerging(t *testing.T) {
	d := smallDesign()
	// Grid smaller than one macro: every pair is merge-ineligible
	// once both exceed it, so all macros stay singletons.
	c := Build(d, DefaultParams(1))
	if len(c.MacroGroups) != 4 {
		t.Fatalf("macro groups = %d, want 4 singletons with tiny grid", len(c.MacroGroups))
	}
}

func TestGroupsSortedByAreaDesc(t *testing.T) {
	d, err := gen.IBM("ibm01", 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := Build(d, DefaultParams(d.Region.Area()/256))
	for i := 1; i < len(c.MacroGroups); i++ {
		if c.MacroGroups[i].Area > c.MacroGroups[i-1].Area {
			t.Fatalf("groups not area-sorted at %d: %v > %v", i, c.MacroGroups[i].Area, c.MacroGroups[i-1].Area)
		}
	}
}

func TestGroupInvariants(t *testing.T) {
	d, err := gen.IBM("ibm06", 0.03, 5)
	if err != nil {
		t.Fatal(err)
	}
	gridArea := d.Region.Area() / 256
	p := DefaultParams(gridArea)
	c := Build(d, p)

	// Every movable macro and every cell is in exactly one group.
	seen := map[int]bool{}
	for _, g := range c.MacroGroups {
		if len(g.Members) == 0 {
			t.Fatal("empty macro group")
		}
		var area float64
		for _, m := range g.Members {
			if seen[m] {
				t.Fatalf("node %d in two groups", m)
			}
			seen[m] = true
			if d.Nodes[m].Kind != netlist.Macro || d.Nodes[m].Fixed {
				t.Fatalf("macro group contains non-movable-macro node %d", m)
			}
			area += d.Nodes[m].Area()
			if d.Nodes[m].W > g.MaxW+1e-9 || d.Nodes[m].H > g.MaxH+1e-9 {
				t.Fatal("MaxW/MaxH smaller than a member")
			}
		}
		if area != g.Area {
			t.Fatalf("group area %v != sum of members %v", g.Area, area)
		}
		// Groups never exceed the merge cap.
		if g.Area > p.MaxGroupArea+1e-9 && len(g.Members) > 1 {
			t.Fatalf("group area %v exceeds cap %v", g.Area, p.MaxGroupArea)
		}
	}
	for _, g := range c.CellGroups {
		for _, m := range g.Members {
			if seen[m] {
				t.Fatalf("node %d in two groups", m)
			}
			seen[m] = true
			if d.Nodes[m].Kind != netlist.Cell {
				t.Fatalf("cell group contains non-cell node %d", m)
			}
		}
	}
	for _, m := range d.MovableMacroIndices() {
		if !seen[m] {
			t.Fatalf("macro %d unassigned", m)
		}
	}
	for _, ci := range d.CellIndices() {
		if !seen[ci] {
			t.Fatalf("cell %d unassigned", ci)
		}
	}
	// GroupOf is consistent with membership.
	for gi, g := range c.MacroGroups {
		for _, m := range g.Members {
			if c.GroupOf[m] != gi {
				t.Fatalf("GroupOf[%d] = %d, want %d", m, c.GroupOf[m], gi)
			}
		}
	}
	// Cell grouping should actually coarsen (far fewer groups than
	// cells).
	if len(c.CellGroups)*2 >= len(d.CellIndices()) {
		t.Errorf("cell clustering barely coarsened: %d groups for %d cells",
			len(c.CellGroups), len(d.CellIndices()))
	}
}

func TestBuildDeterministic(t *testing.T) {
	mk := func() *Clustering {
		d, err := gen.IBM("ibm01", 0.02, 9)
		if err != nil {
			t.Fatal(err)
		}
		return Build(d, DefaultParams(d.Region.Area()/64))
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a.MacroGroups, b.MacroGroups) {
		t.Error("macro grouping must be deterministic")
	}
	if !reflect.DeepEqual(a.GroupOf, b.GroupOf) {
		t.Error("GroupOf must be deterministic")
	}
}

func TestReorderMacroGroups(t *testing.T) {
	d := smallDesign()
	c := Build(d, DefaultParams(150))
	orig := append([]Group(nil), c.MacroGroups...)
	perm := []int{1, 0}
	c.ReorderMacroGroups(perm)
	if !reflect.DeepEqual(c.MacroGroups[0], orig[1]) || !reflect.DeepEqual(c.MacroGroups[1], orig[0]) {
		t.Error("reorder did not permute groups")
	}
	for gi, g := range c.MacroGroups {
		for _, m := range g.Members {
			if c.GroupOf[m] != gi {
				t.Errorf("GroupOf[%d] = %d after reorder, want %d", m, c.GroupOf[m], gi)
			}
		}
	}
}

func TestReorderRejectsBadPermutation(t *testing.T) {
	d := smallDesign()
	c := Build(d, DefaultParams(150))
	for _, perm := range [][]int{{0}, {0, 0}, {0, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("perm %v should panic", perm)
				}
			}()
			c.ReorderMacroGroups(perm)
		}()
	}
}

func TestCommonHier(t *testing.T) {
	cases := []struct {
		a, b, want string
	}{
		{"top/a/x", "top/a/y", "top/a"},
		{"top/a", "top/a", "top/a"},
		{"top/a", "other/a", ""},
		{"", "top", ""},
	}
	for _, c := range cases {
		if got := commonHier(c.a, c.b); got != c.want {
			t.Errorf("commonHier(%q,%q) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
}

func TestGammaScoreComponents(t *testing.T) {
	d := smallDesign()
	nodeNets := d.NodeNets()
	p := DefaultParams(150)
	a := newWorkGroup(d, 0, nodeNets, 0) // m0
	b := newWorkGroup(d, 1, nodeNets, 1) // m1: near, connected, same hier
	c := newWorkGroup(d, 2, nodeNets, 2) // m2: far, unconnected, other hier
	sNear := gammaScore(d, a, b, p)
	sFar := gammaScore(d, a, c, p)
	if sNear <= sFar {
		t.Errorf("Γ(near,connected)=%v should exceed Γ(far)=%v", sNear, sFar)
	}
	// Connectivity contributes: removing the shared net must lower Γ.
	conn := connectivity(d, a, b)
	if conn != 1 {
		t.Errorf("connectivity(m0,m1) = %v, want 1", conn)
	}
	if connectivity(d, a, c) != 0 {
		t.Error("connectivity(m0,m2) should be 0")
	}
}

func TestMergeIntoUpdatesCentroidAndNets(t *testing.T) {
	d := smallDesign()
	nodeNets := d.NodeNets()
	a := newWorkGroup(d, 0, nodeNets, 0)
	b := newWorkGroup(d, 1, nodeNets, 1)
	cx := (a.CX*a.Area + b.CX*b.Area) / (a.Area + b.Area)
	mergeInto(a, b)
	if a.CX != cx {
		t.Errorf("centroid = %v, want %v", a.CX, cx)
	}
	if b.alive {
		t.Error("source group should be dead after merge")
	}
	if len(a.Members) != 2 {
		t.Errorf("members = %v", a.Members)
	}
	if a.Area != 200 {
		t.Errorf("area = %v, want 200", a.Area)
	}
	// Net n0 now has both pins in the group; counts accumulate.
	if a.nets[0] != 2 {
		t.Errorf("net 0 count = %v, want 2", a.nets[0])
	}
}

func TestMatchMergeSkipsHighFanoutNets(t *testing.T) {
	// A 20-pin net must not create candidate pairs (clique blowup
	// guard); cells connected only through it stay unmerged.
	d := &netlist.Design{Name: "hf", Region: geom.NewRect(0, 0, 100, 100)}
	var pins []netlist.Pin
	for i := 0; i < 20; i++ {
		id := d.AddNode(netlist.Node{
			Name: "c" + string(rune('a'+i)), Kind: netlist.Cell,
			W: 1, H: 1, X: float64(i * 5), Y: 0,
		})
		pins = append(pins, netlist.Pin{Node: id})
	}
	d.AddNet(netlist.Net{Name: "huge", Pins: pins})
	c := Build(d, DefaultParams(1000))
	if len(c.CellGroups) != 20 {
		t.Errorf("cell groups = %d, want 20 (high-fanout net ignored)", len(c.CellGroups))
	}
}

func TestBuildEmptyDesign(t *testing.T) {
	d := &netlist.Design{Name: "empty", Region: geom.NewRect(0, 0, 10, 10)}
	c := Build(d, DefaultParams(1))
	if len(c.MacroGroups) != 0 || len(c.CellGroups) != 0 {
		t.Errorf("empty design produced groups: %d/%d", len(c.MacroGroups), len(c.CellGroups))
	}
}

func TestFixedMacrosExcludedFromGrouping(t *testing.T) {
	d := smallDesign()
	d.Nodes[0].Fixed = true // m0 becomes pre-placed
	c := Build(d, DefaultParams(150))
	for _, g := range c.MacroGroups {
		for _, m := range g.Members {
			if m == 0 {
				t.Fatal("fixed macro entered a group")
			}
		}
	}
	if c.GroupOf[0] != -1 {
		t.Error("fixed macro should map to no group")
	}
}
