// Package cluster implements the coarsened-netlist generation stage of
// the paper (Sec. II-A): macros are merged into macro groups with the
// score Γ of Eq. (1) and standard cells into cell groups with the
// score φ of Eq. (2). Both scores combine proximity in an initial
// analytical placement, connectivity, and (for macros) shared design
// hierarchy and area similarity.
//
// Macro grouping uses the paper's exact greedy scheme — repeatedly
// merge the highest-scoring pair — implemented with a lazy max-heap so
// the ≤ ~1000-macro instances finish instantly. Cell grouping faces
// hundreds of thousands of nodes, where all-pairs greedy is
// intractable for any implementation (the paper's clustering reference
// [24] also restricts candidates); we restrict candidate pairs to
// net-connected cells and run multi-pass heavy-pair matching with the
// same φ score, which preserves the score's ordering behaviour.
package cluster

import (
	"container/heap"
	"math"
	"sort"

	"macroplace/internal/netlist"
)

// Params are the user-specified constants of Eqs. (1) and (2), with
// paper defaults from Sec. II-A.
type Params struct {
	// Delta weights hierarchy commonality in Γ (paper: 0.001).
	Delta float64
	// Epsilon weights connectivity in Γ (paper: 0.0003).
	Epsilon float64
	// Kappa weights area similarity in Γ (paper: 1).
	Kappa float64
	// Rho weights connectivity density in φ (paper: 1).
	Rho float64
	// Nu is the merge-termination threshold for both scores
	// (paper: 0.001).
	Nu float64
	// GridArea is the area of one placement grid; merging stops for a
	// group once it exceeds this area.
	GridArea float64
	// MaxGroupArea caps group growth (defaults to 4 × GridArea).
	MaxGroupArea float64
}

// DefaultParams returns the paper's constants for a given grid area.
func DefaultParams(gridArea float64) Params {
	return Params{
		Delta:        0.001,
		Epsilon:      0.0003,
		Kappa:        1,
		Rho:          1,
		Nu:           0.001,
		GridArea:     gridArea,
		MaxGroupArea: 4 * gridArea,
	}
}

func (p Params) normalize() Params {
	if p.MaxGroupArea <= 0 {
		p.MaxGroupArea = 4 * p.GridArea
	}
	return p
}

// Group is a cluster of node indices.
type Group struct {
	// Members are node indices into the original design.
	Members []int
	// Area is the summed footprint area.
	Area float64
	// MaxW, MaxH are the largest single-member dimensions; a macro
	// group can never be squeezed below them.
	MaxW, MaxH float64
	// Hier is the common hierarchy prefix of the members ("" if none).
	Hier string
	// CX, CY is the area-weighted centroid of the members' initial
	// placement.
	CX, CY float64
}

// Clustering is the output of Build: the coarsened design's groups.
type Clustering struct {
	MacroGroups []Group
	CellGroups  []Group
	// GroupOf maps node index -> group id, where macro groups occupy
	// ids [0, len(MacroGroups)) and cell groups follow. Pads and
	// fixed macros map to -1.
	GroupOf []int
}

// NumGroups returns the total group count.
func (c *Clustering) NumGroups() int { return len(c.MacroGroups) + len(c.CellGroups) }

// ReorderMacroGroups permutes the macro groups so that new position i
// holds old group perm[i], fixing the GroupOf mapping. It panics if
// perm is not a permutation of the macro-group indices. Used by the
// placement-order ablation (Alg. 1 sorts by area; the ablation
// shuffles).
func (c *Clustering) ReorderMacroGroups(perm []int) {
	if len(perm) != len(c.MacroGroups) {
		panic("cluster: ReorderMacroGroups permutation length mismatch")
	}
	seen := make([]bool, len(perm))
	ng := make([]Group, len(perm))
	for i, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			panic("cluster: ReorderMacroGroups invalid permutation")
		}
		seen[p] = true
		ng[i] = c.MacroGroups[p]
	}
	c.MacroGroups = ng
	for gi := range c.MacroGroups {
		for _, m := range c.MacroGroups[gi].Members {
			c.GroupOf[m] = gi
		}
	}
}

// Build clusters the design's movable macros and cells. Node positions
// must already hold the initial prototype placement (see
// gplace.InitialPlacement).
func Build(d *netlist.Design, p Params) *Clustering {
	p = p.normalize()
	nodeNets := d.NodeNets()

	macros := d.MovableMacroIndices()
	cells := d.CellIndices()

	mg := greedyMerge(d, macros, nodeNets, p, true)
	cg := matchMerge(d, cells, p)

	c := &Clustering{MacroGroups: mg, CellGroups: cg}
	c.GroupOf = make([]int, len(d.Nodes))
	for i := range c.GroupOf {
		c.GroupOf[i] = -1
	}
	for gi := range mg {
		for _, m := range mg[gi].Members {
			c.GroupOf[m] = gi
		}
	}
	off := len(mg)
	for gi := range cg {
		for _, m := range cg[gi].Members {
			c.GroupOf[m] = off + gi
		}
	}
	return c
}

// ---------------------------------------------------------------------------
// Greedy pairwise merging for macros (exact Eq. 1 scheme).

type workGroup struct {
	Group
	alive bool
	// nets maps net index -> number of member pins on it; shared keys
	// between two groups define their connectivity w.
	nets map[int]float64
	id   int
	ver  int // bumped on every merge; heap entries with stale ver are skipped
}

type pairItem struct {
	score    float64
	a, b     int // group ids
	va, vb   int // group versions at push time
	sequence int // tiebreaker for determinism
}

type pairHeap []pairItem

func (h pairHeap) Len() int { return len(h) }
func (h pairHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score > h[j].score
	}
	return h[i].sequence < h[j].sequence
}
func (h pairHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x any)        { *h = append(*h, x.(pairItem)) }
func (h *pairHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h pairHeap) worstCaseSize() int { return cap(h) }

func newWorkGroup(d *netlist.Design, node int, nodeNets [][]int, id int) *workGroup {
	n := &d.Nodes[node]
	c := n.Center()
	g := &workGroup{
		Group: Group{
			Members: []int{node},
			Area:    n.Area(),
			MaxW:    n.W,
			MaxH:    n.H,
			Hier:    n.Hier,
			CX:      c.X,
			CY:      c.Y,
		},
		alive: true,
		nets:  make(map[int]float64),
		id:    id,
	}
	for _, ni := range nodeNets[node] {
		g.nets[ni]++
	}
	return g
}

// connectivity returns w(a, b): summed net weights of nets incident to
// both groups.
func connectivity(d *netlist.Design, a, b *workGroup) float64 {
	small, big := a, b
	if len(big.nets) < len(small.nets) {
		small, big = big, small
	}
	var w float64
	for ni := range small.nets {
		if _, ok := big.nets[ni]; ok {
			w += d.Nets[ni].EffWeight()
		}
	}
	return w
}

// gammaScore evaluates Eq. (1) for two macro groups.
func gammaScore(d *netlist.Design, a, b *workGroup, p Params) float64 {
	dist := math.Hypot(a.CX-b.CX, a.CY-b.CY)
	if dist < 1e-9 {
		dist = 1e-9
	}
	h := float64(netlist.HierPrefixLen(a.Hier, b.Hier))
	w := connectivity(d, a, b)
	dA := math.Abs(a.Area - b.Area)
	return 1/dist + p.Delta*h + p.Epsilon*w + p.Kappa/(dA+1)
}

// phiScore evaluates Eq. (2) for two cell groups.
func phiScore(a, b *workGroup, conn float64, p Params) float64 {
	dist := math.Hypot(a.CX-b.CX, a.CY-b.CY)
	if dist < 1e-9 {
		dist = 1e-9
	}
	return 1/dist + p.Rho*conn/(a.Area+b.Area)
}

// mergeInto merges src into dst.
func mergeInto(dst, src *workGroup) {
	totalA := dst.Area + src.Area
	if totalA > 0 {
		dst.CX = (dst.CX*dst.Area + src.CX*src.Area) / totalA
		dst.CY = (dst.CY*dst.Area + src.CY*src.Area) / totalA
	}
	dst.Area = totalA
	dst.Members = append(dst.Members, src.Members...)
	if src.MaxW > dst.MaxW {
		dst.MaxW = src.MaxW
	}
	if src.MaxH > dst.MaxH {
		dst.MaxH = src.MaxH
	}
	dst.Hier = commonHier(dst.Hier, src.Hier)
	for ni, c := range src.nets {
		dst.nets[ni] += c
	}
	src.alive = false
	src.nets = nil
	dst.ver++
	src.ver++
}

func commonHier(a, b string) string {
	n := netlist.HierPrefixLen(a, b)
	if n == 0 {
		return ""
	}
	// Reconstruct the shared prefix from a.
	idx := 0
	for seen := 0; idx < len(a); idx++ {
		if a[idx] == '/' {
			seen++
			if seen == n {
				break
			}
		}
	}
	return a[:idx]
}

// mergeEligible reports whether the pair may merge under the area
// rules: stop growing a group once it exceeds one grid, and never
// exceed MaxGroupArea.
func mergeEligible(a, b *workGroup, p Params) bool {
	if a.Area > p.GridArea && b.Area > p.GridArea {
		return false
	}
	return a.Area+b.Area <= p.MaxGroupArea
}

// greedyMerge runs the paper's exact highest-score-pair loop.
func greedyMerge(d *netlist.Design, nodes []int, nodeNets [][]int, p Params, macroMode bool) []Group {
	groups := make([]*workGroup, len(nodes))
	for i, n := range nodes {
		groups[i] = newWorkGroup(d, n, nodeNets, i)
	}
	if len(groups) <= 1 {
		return finalize(groups)
	}

	h := &pairHeap{}
	seq := 0
	push := func(a, b *workGroup) {
		if !mergeEligible(a, b, p) {
			return
		}
		var s float64
		if macroMode {
			s = gammaScore(d, a, b, p)
		} else {
			s = phiScore(a, b, connectivity(d, a, b), p)
		}
		if s < p.Nu {
			return
		}
		heap.Push(h, pairItem{score: s, a: a.id, b: b.id, va: a.ver, vb: b.ver, sequence: seq})
		seq++
	}
	for i := 0; i < len(groups); i++ {
		for j := i + 1; j < len(groups); j++ {
			push(groups[i], groups[j])
		}
	}

	for h.Len() > 0 {
		it := heap.Pop(h).(pairItem)
		a, b := groups[it.a], groups[it.b]
		if !a.alive || !b.alive || a.ver != it.va || b.ver != it.vb {
			continue // stale entry
		}
		if it.score < p.Nu {
			break
		}
		mergeInto(a, b)
		for _, g := range groups {
			if g.alive && g.id != a.id {
				push(a, g)
			}
		}
	}
	return finalize(groups)
}

func finalize(groups []*workGroup) []Group {
	var out []Group
	for _, g := range groups {
		if g != nil && g.alive {
			out = append(out, g.Group)
		}
	}
	// Deterministic ordering: by descending area then first member.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Area != out[j].Area {
			return out[i].Area > out[j].Area
		}
		return out[i].Members[0] < out[j].Members[0]
	})
	return out
}

// ---------------------------------------------------------------------------
// Multi-pass heavy-pair matching for cells.

// matchMerge clusters cells by repeated matching passes. Candidate
// pairs are cells sharing a net; each pass greedily matches the
// highest-φ disjoint pairs, then rebuilds candidates between passes.
// Passes stop when every group exceeds the grid area, no pair scores
// above Nu, or a pass makes no merge.
func matchMerge(d *netlist.Design, nodes []int, p Params) []Group {
	nodeNets := d.NodeNets()
	groups := make([]*workGroup, len(nodes))
	groupOf := make(map[int]int, len(nodes)) // node -> group index
	for i, n := range nodes {
		groups[i] = newWorkGroup(d, n, nodeNets, i)
		groupOf[n] = i
	}
	if len(groups) <= 1 {
		return finalize(groups)
	}

	const maxPasses = 12
	for pass := 0; pass < maxPasses; pass++ {
		type cand struct {
			score float64
			a, b  int
		}
		// Gather candidate pairs from nets: all distinct group pairs
		// co-hosted on a net. Degree is capped so clique blowup on
		// high-fanout nets cannot occur.
		seen := make(map[[2]int]bool)
		var cands []cand
		for ni := range d.Nets {
			pins := d.Nets[ni].Pins
			if len(pins) > 16 {
				continue
			}
			var gs []int
			for _, pin := range pins {
				if gi, ok := groupOf[pin.Node]; ok {
					gs = append(gs, gi)
				}
			}
			for i := 0; i < len(gs); i++ {
				for j := i + 1; j < len(gs); j++ {
					a, b := gs[i], gs[j]
					if a == b {
						continue
					}
					if a > b {
						a, b = b, a
					}
					key := [2]int{a, b}
					if seen[key] {
						continue
					}
					seen[key] = true
					ga, gb := groups[a], groups[b]
					if !ga.alive || !gb.alive || !mergeEligible(ga, gb, p) {
						continue
					}
					s := phiScore(ga, gb, connectivity(d, ga, gb), p)
					if s >= p.Nu {
						cands = append(cands, cand{s, a, b})
					}
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].score != cands[j].score {
				return cands[i].score > cands[j].score
			}
			if cands[i].a != cands[j].a {
				return cands[i].a < cands[j].a
			}
			return cands[i].b < cands[j].b
		})
		matched := make(map[int]bool)
		merges := 0
		for _, c := range cands {
			if matched[c.a] || matched[c.b] {
				continue
			}
			ga, gb := groups[c.a], groups[c.b]
			if !ga.alive || !gb.alive {
				continue
			}
			mergeInto(ga, gb)
			for _, m := range gb.Members {
				groupOf[m] = c.a
			}
			matched[c.a], matched[c.b] = true, true
			merges++
		}
		if merges == 0 {
			break
		}
		// Stop early once all groups are grid-sized.
		done := true
		for _, g := range groups {
			if g.alive && g.Area <= p.GridArea {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	return finalize(groups)
}
