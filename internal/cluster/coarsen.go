package cluster

import (
	"fmt"
	"math"
	"sort"

	"macroplace/internal/netlist"
)

// Coarse bundles the coarsened netlist with the mapping back to the
// original design. Coarse node indices follow the Clustering group
// numbering (macro groups first, then cell groups), followed by the
// pass-through fixed nodes (pre-placed macros and pads).
type Coarse struct {
	Design *netlist.Design
	// CoarseOf maps an original node index to its coarse node index.
	CoarseOf []int
	// MacroGroups is the number of macro-group nodes (they occupy
	// coarse indices [0, MacroGroups)).
	MacroGroups int
	// CellGroups is the number of cell-group nodes.
	CellGroups int
}

// Coarsen builds the coarsened netlist of Sec. II-A: every macro group
// and cell group becomes a single node, fixed objects pass through,
// nets are remapped onto groups, intra-group nets are dropped, and
// parallel nets (same coarse pin set) are merged by accumulating
// weight — which is what lets the RL reward loop re-place hundreds of
// groups instead of hundreds of thousands of cells.
func Coarsen(d *netlist.Design, c *Clustering) *Coarse {
	out := &Coarse{
		Design:      &netlist.Design{Name: d.Name + ".coarse", Region: d.Region},
		CoarseOf:    make([]int, len(d.Nodes)),
		MacroGroups: len(c.MacroGroups),
		CellGroups:  len(c.CellGroups),
	}
	for i := range out.CoarseOf {
		out.CoarseOf[i] = -1
	}

	addGroup := func(g *Group, kind netlist.NodeKind, name string) int {
		w, h := groupShape(g)
		idx := out.Design.AddNode(netlist.Node{
			Name: name,
			Kind: kind,
			Hier: g.Hier,
			W:    w, H: h,
			X: g.CX - w/2, Y: g.CY - h/2,
		})
		for _, m := range g.Members {
			out.CoarseOf[m] = idx
		}
		return idx
	}
	for gi := range c.MacroGroups {
		addGroup(&c.MacroGroups[gi], netlist.Macro, fmt.Sprintf("mg%d", gi))
	}
	for gi := range c.CellGroups {
		addGroup(&c.CellGroups[gi], netlist.Cell, fmt.Sprintf("cg%d", gi))
	}
	// Pass-through fixed nodes.
	for i := range d.Nodes {
		n := &d.Nodes[i]
		if out.CoarseOf[i] >= 0 {
			continue
		}
		if n.Kind == netlist.Pad || n.Fixed || (n.Kind == netlist.Macro && n.Fixed) {
			cp := *n
			out.CoarseOf[i] = out.Design.AddNode(cp)
		}
		// Unclustered movable nodes (possible when a design has
		// movable macros excluded from clustering) become singleton
		// pass-throughs too.
		if out.CoarseOf[i] < 0 && n.Movable() {
			cp := *n
			out.CoarseOf[i] = out.Design.AddNode(cp)
		}
	}

	// Remap nets; merge identical coarse pin sets.
	type key string
	merged := make(map[key]int)
	for ni := range d.Nets {
		net := &d.Nets[ni]
		set := map[int]bool{}
		for _, p := range net.Pins {
			ci := out.CoarseOf[p.Node]
			if ci >= 0 {
				set[ci] = true
			}
		}
		if len(set) < 2 {
			continue // intra-group or degenerate
		}
		ids := make([]int, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		k := key(fmt.Sprint(ids))
		if existing, ok := merged[k]; ok {
			out.Design.Nets[existing].Weight += net.EffWeight()
			continue
		}
		cn := netlist.Net{Name: net.Name, Weight: net.EffWeight()}
		for _, id := range ids {
			cn.Pins = append(cn.Pins, netlist.Pin{Node: id})
		}
		merged[k] = out.Design.AddNet(cn)
	}
	return out
}

// groupShape picks a footprint for a group node: as close to square as
// its area allows without dropping below the largest member dimension.
func groupShape(g *Group) (w, h float64) {
	if g.Area <= 0 {
		return math.Max(g.MaxW, 1), math.Max(g.MaxH, 1)
	}
	side := math.Sqrt(g.Area)
	w, h = side, side
	if w < g.MaxW {
		w = g.MaxW
		h = g.Area / w
	}
	if h < g.MaxH {
		h = g.MaxH
		if w*h < g.Area {
			w = g.Area / h
		}
	}
	return w, h
}
