package cluster

import (
	"testing"

	"macroplace/internal/gen"
	"macroplace/internal/geom"
	"macroplace/internal/netlist"
)

func coarsenFixture() (*netlist.Design, *Clustering, *Coarse) {
	d := &netlist.Design{Name: "c", Region: geom.NewRect(0, 0, 160, 160)}
	// Pair of macros that merge, one lone macro, two cells, one pad,
	// one pre-placed macro.
	d.AddNode(netlist.Node{Name: "m0", Kind: netlist.Macro, W: 10, H: 10, X: 10, Y: 10, Hier: "top/a"})
	d.AddNode(netlist.Node{Name: "m1", Kind: netlist.Macro, W: 10, H: 10, X: 22, Y: 10, Hier: "top/a"})
	d.AddNode(netlist.Node{Name: "m2", Kind: netlist.Macro, W: 10, H: 10, X: 140, Y: 140, Hier: "top/b"})
	d.AddNode(netlist.Node{Name: "c0", Kind: netlist.Cell, W: 2, H: 2, X: 12, Y: 40})
	d.AddNode(netlist.Node{Name: "c1", Kind: netlist.Cell, W: 2, H: 2, X: 15, Y: 40})
	d.AddNode(netlist.Node{Name: "pp", Kind: netlist.Macro, Fixed: true, W: 8, H: 8, X: 0, Y: 150})
	d.AddNode(netlist.Node{Name: "io", Kind: netlist.Pad, Fixed: true, W: 1, H: 1, X: 0, Y: 0})
	d.AddNet(netlist.Net{Name: "n0", Pins: []netlist.Pin{{Node: 0}, {Node: 1}}})            // intra-group after merge
	d.AddNet(netlist.Net{Name: "n1", Pins: []netlist.Pin{{Node: 0}, {Node: 3}}})            // macro group ↔ cells
	d.AddNet(netlist.Net{Name: "n2", Pins: []netlist.Pin{{Node: 1}, {Node: 3}, {Node: 4}}}) // parallel at coarse level
	d.AddNet(netlist.Net{Name: "n3", Pins: []netlist.Pin{{Node: 2}, {Node: 6}}})            // macro ↔ pad
	d.AddNet(netlist.Net{Name: "n4", Pins: []netlist.Pin{{Node: 5}, {Node: 2}}})            // fixed macro ↔ macro
	clus := Build(d, DefaultParams(150))
	return d, clus, Coarsen(d, clus)
}

func TestCoarsenStructure(t *testing.T) {
	d, clus, co := coarsenFixture()
	// Expect 2 macro groups ({m0,m1}, {m2}); cells merge into one
	// group; pad and fixed macro pass through.
	if co.MacroGroups != len(clus.MacroGroups) {
		t.Fatalf("MacroGroups = %d, want %d", co.MacroGroups, len(clus.MacroGroups))
	}
	wantNodes := co.MacroGroups + co.CellGroups + 2 // + pad + fixed macro
	if len(co.Design.Nodes) != wantNodes {
		t.Fatalf("coarse nodes = %d, want %d", len(co.Design.Nodes), wantNodes)
	}
	// Every original node maps somewhere.
	for i := range d.Nodes {
		ci := co.CoarseOf[i]
		if ci < 0 || ci >= len(co.Design.Nodes) {
			t.Fatalf("node %d maps to %d", i, ci)
		}
	}
	// Macro group node areas make sense: group shape area >= member sum
	// can differ (shape honours MaxW/MaxH), but the group node must be
	// a macro kind.
	for gi := 0; gi < co.MacroGroups; gi++ {
		if co.Design.Nodes[gi].Kind != netlist.Macro {
			t.Errorf("coarse node %d kind = %v, want macro", gi, co.Design.Nodes[gi].Kind)
		}
	}
	// Fixed pass-throughs preserve kind/position.
	ppIdx := co.CoarseOf[5]
	if co.Design.Nodes[ppIdx].Kind != netlist.Macro || !co.Design.Nodes[ppIdx].Fixed {
		t.Error("pre-placed macro should pass through fixed")
	}
	if co.Design.Nodes[ppIdx].X != 0 || co.Design.Nodes[ppIdx].Y != 150 {
		t.Error("pass-through position changed")
	}
}

func TestCoarsenDropsIntraGroupNets(t *testing.T) {
	_, clus, co := coarsenFixture()
	if len(clus.MacroGroups) != 2 {
		t.Skipf("fixture merged unexpectedly: %d macro groups", len(clus.MacroGroups))
	}
	// n0 connects m0-m1 which share a group → must vanish. Every
	// remaining net must span ≥ 2 coarse nodes.
	for i := range co.Design.Nets {
		net := &co.Design.Nets[i]
		if len(net.Pins) < 2 {
			t.Fatalf("coarse net %s has %d pins", net.Name, len(net.Pins))
		}
		first := net.Pins[0].Node
		allSame := true
		for _, p := range net.Pins {
			if p.Node != first {
				allSame = false
			}
		}
		if allSame {
			t.Fatalf("coarse net %s is intra-node", net.Name)
		}
	}
}

func TestCoarsenMergesParallelNets(t *testing.T) {
	_, clus, co := coarsenFixture()
	if len(clus.MacroGroups) != 2 {
		t.Skip("fixture merged unexpectedly")
	}
	// n1 (m0↔c0) and n2 (m1↔c0,c1) both reduce to {macroGroup0,
	// cellGroup}: they must merge into one net of weight 2.
	var found *netlist.Net
	for i := range co.Design.Nets {
		net := &co.Design.Nets[i]
		if net.Weight >= 2 {
			found = net
		}
	}
	if found == nil {
		t.Fatal("parallel coarse nets were not merged with accumulated weight")
	}
}

func TestCoarsenValidates(t *testing.T) {
	_, _, co := coarsenFixture()
	if err := co.Design.Validate(); err != nil {
		t.Fatalf("coarse design invalid: %v", err)
	}
}

func TestCoarsenOnGeneratedDesign(t *testing.T) {
	d, err := gen.IBM("ibm01", 0.02, 13)
	if err != nil {
		t.Fatal(err)
	}
	clus := Build(d, DefaultParams(d.Region.Area()/256))
	co := Coarsen(d, clus)
	if err := co.Design.Validate(); err != nil {
		t.Fatalf("coarse design invalid: %v", err)
	}
	if len(co.Design.Nodes) >= len(d.Nodes) {
		t.Errorf("coarsening did not shrink: %d -> %d nodes", len(d.Nodes), len(co.Design.Nodes))
	}
	if len(co.Design.Nets) >= len(d.Nets) {
		t.Errorf("coarsening did not shrink nets: %d -> %d", len(d.Nets), len(co.Design.Nets))
	}
	// Group shape must fit the largest member on both axes.
	for gi := range clus.MacroGroups {
		g := &clus.MacroGroups[gi]
		node := &co.Design.Nodes[gi]
		if node.W < g.MaxW-1e-9 || node.H < g.MaxH-1e-9 {
			t.Errorf("group %d shape %vx%v smaller than largest member %vx%v",
				gi, node.W, node.H, g.MaxW, g.MaxH)
		}
	}
}

func TestGroupShapeCoversArea(t *testing.T) {
	g := &Group{Area: 100, MaxW: 4, MaxH: 4}
	w, h := groupShape(g)
	if w*h < 100-1e-9 {
		t.Errorf("shape %vx%v covers %v < area 100", w, h, w*h)
	}
	// Wide member forces a wide shape.
	g2 := &Group{Area: 100, MaxW: 50, MaxH: 1}
	w2, h2 := groupShape(g2)
	if w2 < 50 {
		t.Errorf("shape width %v < member width 50", w2)
	}
	if w2*h2 < 100-1e-9 {
		t.Errorf("shape %vx%v covers %v < area 100", w2, h2, w2*h2)
	}
}
