package metrics

import (
	"math"
	"strings"
	"testing"

	"macroplace/internal/gen"
	"macroplace/internal/geom"
	"macroplace/internal/netlist"
)

func TestRUDYSingleNet(t *testing.T) {
	d := &netlist.Design{Region: geom.NewRect(0, 0, 32, 32)}
	a := d.AddNode(netlist.Node{Name: "a", Kind: netlist.Cell, W: 0, H: 0, X: 4, Y: 4})
	b := d.AddNode(netlist.Node{Name: "b", Kind: netlist.Cell, W: 0, H: 0, X: 12, Y: 12})
	d.AddNet(netlist.Net{Name: "n", Pins: []netlist.Pin{{Node: a}, {Node: b}}})
	cm := RUDY(d, 8) // 4-unit bins
	// Net box [4,4]-[12,12]: HPWL 16, area 64, density (8+8)/64 = 0.25
	// over bins (1,1)-(2,2).
	inside := cm.Demand[1*8+1]
	if math.Abs(inside-0.25) > 1e-9 {
		t.Errorf("inside demand = %v, want 0.25", inside)
	}
	if cm.Demand[0] != 0 {
		t.Error("bins outside the net box must have zero demand")
	}
	// Partial bins at the box boundary scale by overlap fraction —
	// here the box aligns exactly with bin boundaries, so bin (0,1)
	// stays empty.
	if cm.Demand[1*8+0] != 0 {
		t.Errorf("boundary-exterior bin demand = %v", cm.Demand[1*8+0])
	}
	if got := cm.Max(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("Max = %v", got)
	}
}

func TestRUDYWeightsAndDegenerateNets(t *testing.T) {
	d := &netlist.Design{Region: geom.NewRect(0, 0, 10, 10)}
	a := d.AddNode(netlist.Node{Name: "a", Kind: netlist.Cell, X: 1, Y: 1})
	b := d.AddNode(netlist.Node{Name: "b", Kind: netlist.Cell, X: 9, Y: 9})
	d.AddNet(netlist.Net{Name: "w", Weight: 3, Pins: []netlist.Pin{{Node: a}, {Node: b}}})
	d.AddNet(netlist.Net{Name: "single", Pins: []netlist.Pin{{Node: a}}}) // ignored
	cm1 := RUDY(d, 4)
	d.Nets[0].Weight = 1
	cm2 := RUDY(d, 4)
	if math.Abs(cm1.Mean()-3*cm2.Mean()) > 1e-9 {
		t.Errorf("weight scaling: %v vs 3×%v", cm1.Mean(), cm2.Mean())
	}
}

func TestCongestionOverflowRatio(t *testing.T) {
	cm := &CongestionMap{Bins: 2, Demand: []float64{0, 1, 2, 3}}
	if got := cm.OverflowRatio(1.5); got != 0.5 {
		t.Errorf("OverflowRatio = %v, want 0.5", got)
	}
	if got := cm.OverflowRatio(10); got != 0 {
		t.Errorf("OverflowRatio(10) = %v", got)
	}
}

func TestMeasureDisplacement(t *testing.T) {
	before := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 5}, {X: 1, Y: 1}}
	after := []geom.Point{{X: 3, Y: 4}, {X: 5, Y: 5}, {X: 0, Y: 1}}
	disp := MeasureDisplacement(before, after)
	if disp.Total != 8 || disp.Max != 7 || disp.Moved != 2 {
		t.Errorf("displacement = %+v", disp)
	}
	if math.Abs(disp.Mean-8.0/3) > 1e-12 {
		t.Errorf("mean = %v", disp.Mean)
	}
}

func TestMeasureDisplacementMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	MeasureDisplacement(make([]geom.Point, 2), make([]geom.Point, 3))
}

func TestMeasureReport(t *testing.T) {
	d, err := gen.IBM("ibm01", 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := Measure(d)
	if rep.HPWL <= 0 || rep.WeightedHPWL < rep.HPWL {
		t.Errorf("report wirelengths: %+v", rep)
	}
	if rep.PeakCongestion < rep.MeanCongestion {
		t.Error("peak congestion below mean")
	}
	if !strings.Contains(rep.String(), "HPWL=") {
		t.Error("report string missing fields")
	}
}

func TestMeasureCountsOutsideNodes(t *testing.T) {
	d := &netlist.Design{Region: geom.NewRect(0, 0, 10, 10)}
	d.AddNode(netlist.Node{Name: "in", Kind: netlist.Macro, W: 2, H: 2, X: 1, Y: 1})
	d.AddNode(netlist.Node{Name: "out", Kind: netlist.Macro, W: 2, H: 2, X: 9, Y: 9})
	d.AddNet(netlist.Net{Name: "n", Pins: []netlist.Pin{{Node: 0}, {Node: 1}}})
	rep := Measure(d)
	if rep.Outside != 1 {
		t.Errorf("Outside = %d, want 1", rep.Outside)
	}
}
