package metrics

import (
	"math"
	"strings"
	"testing"

	"macroplace/internal/gen"
	"macroplace/internal/geom"
	"macroplace/internal/netlist"
)

func TestRUDYSingleNet(t *testing.T) {
	d := &netlist.Design{Region: geom.NewRect(0, 0, 32, 32)}
	a := d.AddNode(netlist.Node{Name: "a", Kind: netlist.Cell, W: 0, H: 0, X: 4, Y: 4})
	b := d.AddNode(netlist.Node{Name: "b", Kind: netlist.Cell, W: 0, H: 0, X: 12, Y: 12})
	d.AddNet(netlist.Net{Name: "n", Pins: []netlist.Pin{{Node: a}, {Node: b}}})
	cm := RUDY(d, 8) // 4-unit bins
	// Net box [4,4]-[12,12]: HPWL 16, area 64, density (8+8)/64 = 0.25
	// over bins (1,1)-(2,2).
	inside := cm.Demand[1*8+1]
	if math.Abs(inside-0.25) > 1e-9 {
		t.Errorf("inside demand = %v, want 0.25", inside)
	}
	if cm.Demand[0] != 0 {
		t.Error("bins outside the net box must have zero demand")
	}
	// Partial bins at the box boundary scale by overlap fraction —
	// here the box aligns exactly with bin boundaries, so bin (0,1)
	// stays empty.
	if cm.Demand[1*8+0] != 0 {
		t.Errorf("boundary-exterior bin demand = %v", cm.Demand[1*8+0])
	}
	if got := cm.Max(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("Max = %v", got)
	}
}

func TestRUDYWeightsAndDegenerateNets(t *testing.T) {
	d := &netlist.Design{Region: geom.NewRect(0, 0, 10, 10)}
	a := d.AddNode(netlist.Node{Name: "a", Kind: netlist.Cell, X: 1, Y: 1})
	b := d.AddNode(netlist.Node{Name: "b", Kind: netlist.Cell, X: 9, Y: 9})
	d.AddNet(netlist.Net{Name: "w", Weight: 3, Pins: []netlist.Pin{{Node: a}, {Node: b}}})
	d.AddNet(netlist.Net{Name: "single", Pins: []netlist.Pin{{Node: a}}}) // ignored
	cm1 := RUDY(d, 4)
	d.Nets[0].Weight = 1
	cm2 := RUDY(d, 4)
	if math.Abs(cm1.Mean()-3*cm2.Mean()) > 1e-9 {
		t.Errorf("weight scaling: %v vs 3×%v", cm1.Mean(), cm2.Mean())
	}
}

func TestCongestionOverflowRatio(t *testing.T) {
	cm := &CongestionMap{Bins: 2, Demand: []float64{0, 1, 2, 3}}
	if got := cm.OverflowRatio(1.5); got != 0.5 {
		t.Errorf("OverflowRatio = %v, want 0.5", got)
	}
	if got := cm.OverflowRatio(10); got != 0 {
		t.Errorf("OverflowRatio(10) = %v", got)
	}
}

func TestMeasureDisplacement(t *testing.T) {
	before := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 5}, {X: 1, Y: 1}}
	after := []geom.Point{{X: 3, Y: 4}, {X: 5, Y: 5}, {X: 0, Y: 1}}
	disp := MeasureDisplacement(before, after)
	if disp.Total != 8 || disp.Max != 7 || disp.Moved != 2 {
		t.Errorf("displacement = %+v", disp)
	}
	if math.Abs(disp.Mean-8.0/3) > 1e-12 {
		t.Errorf("mean = %v", disp.Mean)
	}
}

func TestMeasureDisplacementMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	MeasureDisplacement(make([]geom.Point, 2), make([]geom.Point, 3))
}

func TestMeasureReport(t *testing.T) {
	d, err := gen.IBM("ibm01", 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := Measure(d)
	if rep.HPWL <= 0 || rep.WeightedHPWL < rep.HPWL {
		t.Errorf("report wirelengths: %+v", rep)
	}
	if rep.PeakCongestion < rep.MeanCongestion {
		t.Error("peak congestion below mean")
	}
	if !strings.Contains(rep.String(), "HPWL=") {
		t.Error("report string missing fields")
	}
}

func TestMeasureCountsOutsideNodes(t *testing.T) {
	d := &netlist.Design{Region: geom.NewRect(0, 0, 10, 10)}
	d.AddNode(netlist.Node{Name: "in", Kind: netlist.Macro, W: 2, H: 2, X: 1, Y: 1})
	d.AddNode(netlist.Node{Name: "out", Kind: netlist.Macro, W: 2, H: 2, X: 9, Y: 9})
	d.AddNet(netlist.Net{Name: "n", Pins: []netlist.Pin{{Node: 0}, {Node: 1}}})
	rep := Measure(d)
	if rep.Outside != 1 {
		t.Errorf("Outside = %d, want 1", rep.Outside)
	}
}

// TestRUDYEdgeCases drives the estimator through the degenerate
// geometries the clamping in RUDY exists for: zero-area nets, pins on
// the die boundary, and single-bin maps. Each case states the exact
// demand the uniform-spreading model prescribes.
func TestRUDYEdgeCases(t *testing.T) {
	mk := func(region geom.Rect, pts ...geom.Point) *netlist.Design {
		d := &netlist.Design{Region: region}
		var pins []netlist.Pin
		for i, p := range pts {
			id := d.AddNode(netlist.Node{Name: string(rune('a' + i)), Kind: netlist.Cell, X: p.X, Y: p.Y})
			pins = append(pins, netlist.Pin{Node: id})
		}
		d.AddNet(netlist.Net{Name: "n", Pins: pins})
		return d
	}
	cases := []struct {
		name string
		d    *netlist.Design
		bins int
		// want maps bin index → demand; every unlisted bin must be 0.
		want map[int]float64
	}{
		{
			// Both pins on one point: the box is inflated to one bin
			// (w=h=2.5), density (2.5+2.5)/6.25 = 0.8, all of it in the
			// bin containing the point.
			name: "zero-area net",
			d:    mk(geom.NewRect(0, 0, 10, 10), geom.Point{X: 5, Y: 5}, geom.Point{X: 5, Y: 5}),
			bins: 4,
			want: map[int]float64{2*4 + 2: 0.8},
		},
		{
			// A horizontal net touching both die boundaries: height
			// inflates to one bin, density (10+2.5)/25 = 0.5 spread over
			// row y=2 only.
			name: "pins on die boundary",
			d:    mk(geom.NewRect(0, 0, 10, 10), geom.Point{X: 0, Y: 5}, geom.Point{X: 10, Y: 5}),
			bins: 4,
			want: map[int]float64{2 * 4: 0.5, 2*4 + 1: 0.5, 2*4 + 2: 0.5, 2*4 + 3: 0.5},
		},
		{
			// Degenerate net pinned exactly on the far corner: the
			// inflated box lies entirely outside the die, the clamped
			// bin has zero overlap, and the map stays empty (no panic,
			// no negative index).
			name: "net at far corner",
			d:    mk(geom.NewRect(0, 0, 10, 10), geom.Point{X: 10, Y: 10}, geom.Point{X: 10, Y: 10}),
			bins: 4,
			want: map[int]float64{},
		},
		{
			// One-bin map: everything lands in bin 0, scaled by the
			// overlap of the inflated box [2,3]–[12,13] with the die:
			// density (10+10)/100 = 0.2, overlap 8×7 of 100.
			name: "one-bin map",
			d:    mk(geom.NewRect(0, 0, 10, 10), geom.Point{X: 2, Y: 3}, geom.Point{X: 7, Y: 8}),
			bins: 1,
			want: map[int]float64{0: 0.2 * 56 / 100},
		},
	}
	for _, tc := range cases {
		cm := RUDY(tc.d, tc.bins)
		if len(cm.Demand) != tc.bins*tc.bins {
			t.Errorf("%s: map size %d, want %d", tc.name, len(cm.Demand), tc.bins*tc.bins)
			continue
		}
		for i, v := range cm.Demand {
			want := tc.want[i]
			if math.Abs(v-want) > 1e-9 {
				t.Errorf("%s: bin %d demand = %v, want %v", tc.name, i, v, want)
			}
		}
	}
}

// TestRUDYDegenerateMaps: non-positive bin counts fall back to the
// 32-bin default, and a zero-area region yields an all-zero map
// instead of dividing by zero.
func TestRUDYDegenerateMaps(t *testing.T) {
	d := &netlist.Design{Region: geom.NewRect(0, 0, 10, 10)}
	a := d.AddNode(netlist.Node{Name: "a", Kind: netlist.Cell, X: 1, Y: 1})
	b := d.AddNode(netlist.Node{Name: "b", Kind: netlist.Cell, X: 9, Y: 9})
	d.AddNet(netlist.Net{Name: "n", Pins: []netlist.Pin{{Node: a}, {Node: b}}})
	if cm := RUDY(d, 0); cm.Bins != 32 || len(cm.Demand) != 32*32 {
		t.Errorf("bins=0: got %d bins, want the 32 default", cm.Bins)
	}
	flat := &netlist.Design{Region: geom.NewRect(0, 0, 0, 10)}
	if cm := RUDY(flat, 4); cm.Max() != 0 {
		t.Errorf("zero-width region: demand = %v, want all zero", cm.Max())
	}
	// Empty map accessors must not divide by zero.
	empty := &CongestionMap{}
	if empty.Mean() != 0 || empty.OverflowRatio(1) != 0 {
		t.Error("empty map accessors must return 0")
	}
}

func TestClampI(t *testing.T) {
	cases := []struct {
		x, lo, hi, want int
	}{
		{5, 0, 10, 5},   // inside
		{-3, 0, 10, 0},  // below
		{42, 0, 10, 10}, // above
		{0, 0, 10, 0},   // on lower bound
		{10, 0, 10, 10}, // on upper bound
		{7, 3, 3, 3},    // collapsed interval
	}
	for _, tc := range cases {
		if got := clampI(tc.x, tc.lo, tc.hi); got != tc.want {
			t.Errorf("clampI(%d, %d, %d) = %d, want %d", tc.x, tc.lo, tc.hi, got, tc.want)
		}
	}
}

// TestReportStringGolden pins the exact Stringer format: experiment
// logs and EXPERIMENTS.md tables are diffed textually, so the format
// is an interface.
func TestReportStringGolden(t *testing.T) {
	r := Report{
		HPWL:           12345.678,
		WeightedHPWL:   23456.789,
		MacroOverlap:   1.5,
		PeakCongestion: 2.25,
		MeanCongestion: 0.125,
		Outside:        3,
	}
	want := "HPWL=1.235e+04 wHPWL=2.346e+04 overlap=1.5 peakCong=2.25 meanCong=0.125 outside=3"
	if got := r.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	zero := Report{}
	wantZero := "HPWL=0 wHPWL=0 overlap=0 peakCong=0 meanCong=0 outside=0"
	if got := zero.String(); got != wantZero {
		t.Errorf("zero String() = %q, want %q", got, wantZero)
	}
}

func TestRUDYIntoMatchesRUDYAndReusesBuffer(t *testing.T) {
	d := &netlist.Design{Region: geom.NewRect(0, 0, 32, 32)}
	a := d.AddNode(netlist.Node{Name: "a", Kind: netlist.Cell, X: 4, Y: 4})
	b := d.AddNode(netlist.Node{Name: "b", Kind: netlist.Cell, X: 12, Y: 12})
	d.AddNet(netlist.Net{Name: "n", Pins: []netlist.Pin{{Node: a}, {Node: b}}})

	want := RUDY(d, 8)
	// Seed the reused map with stale garbage from a different shape:
	// every bin must be rewritten, not accumulated into.
	cm := &CongestionMap{Bins: 3, Demand: make([]float64, 128)}
	for i := range cm.Demand {
		cm.Demand[i] = 99
	}
	got := RUDYInto(cm, d, 8)
	if got != cm {
		t.Fatal("RUDYInto must return the map it was given")
	}
	if got.Bins != want.Bins || len(got.Demand) != len(want.Demand) {
		t.Fatalf("shape %d/%d, want %d/%d", got.Bins, len(got.Demand), want.Bins, len(want.Demand))
	}
	for i := range want.Demand {
		if got.Demand[i] != want.Demand[i] {
			t.Fatalf("Demand[%d] = %v, want %v", i, got.Demand[i], want.Demand[i])
		}
	}
	if &got.Demand[0] != &cm.Demand[0] {
		t.Error("RUDYInto reallocated a buffer with sufficient capacity")
	}
	if nilGot := RUDYInto(nil, d, 8); nilGot == nil || nilGot.Demand[1*8+1] != want.Demand[1*8+1] {
		t.Error("RUDYInto(nil, ...) must allocate and fill a fresh map")
	}
}
