// Package metrics computes placement-quality measures beyond raw
// HPWL: RUDY routing-demand estimation (the congestion proxy used by
// the routability-driven placers the paper cites, e.g. [7], [15],
// [23]), macro displacement between two placements, density maps, and
// a consolidated quality report used by the experiment drivers and the
// congestion-aware extension.
package metrics

import (
	"fmt"
	"math"

	"macroplace/internal/geom"
	"macroplace/internal/netlist"
)

// CongestionMap is a bin grid of estimated routing demand.
type CongestionMap struct {
	Bins   int
	Region geom.Rect
	// Demand[y*Bins+x] is the accumulated RUDY density of bin (x, y).
	Demand []float64
}

// RUDY computes the Rectangular Uniform wire DensitY estimate
// (Spindler & Johannes): every net spreads a wire volume of
// HPWL/(w·h) uniformly over its bounding box. Higher values flag
// likely routing congestion.
func RUDY(d *netlist.Design, bins int) *CongestionMap {
	return RUDYInto(nil, d, bins)
}

// RUDYInto is RUDY accumulating into a caller-owned CongestionMap, so
// per-step congestion evaluation inside a search reuses one demand
// buffer instead of allocating bins² floats per call. A nil cm (or one
// whose Demand cannot hold bins²) is (re)allocated; otherwise cm is
// reconfigured for this design and fully overwritten.
func RUDYInto(cm *CongestionMap, d *netlist.Design, bins int) *CongestionMap {
	if bins <= 0 {
		bins = 32
	}
	if cm == nil {
		cm = &CongestionMap{}
	}
	cm.Bins = bins
	cm.Region = d.Region
	if cap(cm.Demand) < bins*bins {
		cm.Demand = make([]float64, bins*bins)
	} else {
		cm.Demand = cm.Demand[:bins*bins]
		for i := range cm.Demand {
			cm.Demand[i] = 0
		}
	}
	bw := d.Region.W() / float64(bins)
	bh := d.Region.H() / float64(bins)
	if bw <= 0 || bh <= 0 {
		return cm
	}
	var box geom.BBox
	for ni := range d.Nets {
		box.Reset()
		net := &d.Nets[ni]
		for _, p := range net.Pins {
			pt := d.PinPos(p)
			box.Add(pt.X, pt.Y)
		}
		if box.Count() < 2 {
			continue
		}
		r := box.Rect()
		w, h := r.W(), r.H()
		if w < bw {
			w = bw
			r.Ux = r.Lx + w
		}
		if h < bh {
			h = bh
			r.Uy = r.Ly + h
		}
		density := net.EffWeight() * (w + h) / (w * h)
		x0 := clampI(int((r.Lx-d.Region.Lx)/bw), 0, bins-1)
		x1 := clampI(int(math.Ceil((r.Ux-d.Region.Lx)/bw))-1, 0, bins-1)
		y0 := clampI(int((r.Ly-d.Region.Ly)/bh), 0, bins-1)
		y1 := clampI(int(math.Ceil((r.Uy-d.Region.Ly)/bh))-1, 0, bins-1)
		for by := y0; by <= y1; by++ {
			bin := geom.NewRect(d.Region.Lx+float64(x0)*bw, d.Region.Ly+float64(by)*bh, bw, bh)
			for bx := x0; bx <= x1; bx++ {
				ov := r.OverlapArea(bin)
				if ov > 0 {
					cm.Demand[by*bins+bx] += density * ov / (bw * bh)
				}
				bin = bin.Translate(bw, 0)
			}
		}
	}
	return cm
}

// Max returns the peak bin demand.
func (cm *CongestionMap) Max() float64 {
	var m float64
	for _, v := range cm.Demand {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the average bin demand.
func (cm *CongestionMap) Mean() float64 {
	if len(cm.Demand) == 0 {
		return 0
	}
	var s float64
	for _, v := range cm.Demand {
		s += v
	}
	return s / float64(len(cm.Demand))
}

// OverflowRatio returns the fraction of bins whose demand exceeds
// limit.
func (cm *CongestionMap) OverflowRatio(limit float64) float64 {
	if len(cm.Demand) == 0 {
		return 0
	}
	over := 0
	for _, v := range cm.Demand {
		if v > limit {
			over++
		}
	}
	return float64(over) / float64(len(cm.Demand))
}

func clampI(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Displacement summarises how far nodes moved between two position
// snapshots of the same design.
type Displacement struct {
	Total float64
	Max   float64
	Mean  float64
	Moved int
}

// MeasureDisplacement compares two snapshots taken with
// Design.Positions.
func MeasureDisplacement(before, after []geom.Point) Displacement {
	if len(before) != len(after) {
		panic("metrics: displacement snapshot length mismatch")
	}
	var disp Displacement
	for i := range before {
		d := before[i].Manhattan(after[i])
		if d > 0 {
			disp.Moved++
		}
		disp.Total += d
		if d > disp.Max {
			disp.Max = d
		}
	}
	if len(before) > 0 {
		disp.Mean = disp.Total / float64(len(before))
	}
	return disp
}

// Report is a consolidated quality snapshot of one placement.
type Report struct {
	HPWL           float64
	WeightedHPWL   float64
	MacroOverlap   float64
	PeakCongestion float64
	MeanCongestion float64
	// Outside counts movable nodes whose rectangle exceeds the region
	// by more than a ulp-scale tolerance.
	Outside int
}

// Measure computes a full quality report.
func Measure(d *netlist.Design) Report {
	rep := Report{
		HPWL:         d.HPWL(),
		WeightedHPWL: d.WeightedHPWL(),
	}
	macros := d.MacroIndices()
	for i := 0; i < len(macros); i++ {
		for j := i + 1; j < len(macros); j++ {
			rep.MacroOverlap += d.Nodes[macros[i]].Rect().OverlapArea(d.Nodes[macros[j]].Rect())
		}
	}
	cm := RUDY(d, 32)
	rep.PeakCongestion = cm.Max()
	rep.MeanCongestion = cm.Mean()
	eps := 1e-9 * (d.Region.W() + d.Region.H())
	for i := range d.Nodes {
		n := &d.Nodes[i]
		if !n.Movable() {
			continue
		}
		r := n.Rect()
		if r.Lx < d.Region.Lx-eps || r.Ly < d.Region.Ly-eps ||
			r.Ux > d.Region.Ux+eps || r.Uy > d.Region.Uy+eps {
			rep.Outside++
		}
	}
	return rep
}

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf("HPWL=%.4g wHPWL=%.4g overlap=%.4g peakCong=%.3g meanCong=%.3g outside=%d",
		r.HPWL, r.WeightedHPWL, r.MacroOverlap, r.PeakCongestion, r.MeanCongestion, r.Outside)
}
