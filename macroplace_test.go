package macroplace

import (
	"os"
	"path/filepath"
	"testing"
)

func quickOpts() Options {
	return Options{
		Zeta:  8,
		Agent: AgentConfig{Zeta: 8, Channels: 8, ResBlocks: 1, Seed: 2},
		RL:    RLConfig{Episodes: 20, UpdateEvery: 10, CalibrationEpisodes: 8, Seed: 3},
		MCTS:  MCTSConfig{Gamma: 8, Seed: 4},
		Seed:  1,
	}
}

func TestPlaceEndToEnd(t *testing.T) {
	d, err := GenerateIBM("ibm01", 0.015, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Place(d, quickOpts())
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if res.Final.HPWL <= 0 {
		t.Fatal("final HPWL <= 0")
	}
	if len(res.History) != 20 {
		t.Fatalf("history = %d, want 20", len(res.History))
	}
}

func TestGenerateSuites(t *testing.T) {
	if len(IBMNames()) != 17 || len(CirNames()) != 6 {
		t.Fatalf("suites = %d/%d, want 17/6", len(IBMNames()), len(CirNames()))
	}
	if _, err := GenerateIBM("ibm05", 0.1, 1); err == nil {
		t.Error("ibm05 must be rejected (no macros)")
	}
	d, err := GenerateCir("cir3", 0.002, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats().PreplacedMacro == 0 {
		t.Error("industrial benchmark should carry pre-placed macros")
	}
}

func TestBookshelfRoundTripViaFacade(t *testing.T) {
	dir := t.TempDir()
	d := Generate(BenchmarkSpec{Name: "api", MovableMacros: 4, Cells: 80, Nets: 120, Seed: 6})
	if err := WriteBookshelf(d, dir, "api"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBookshelf(filepath.Join(dir, "api.aux"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(d.Nodes) || len(got.Nets) != len(d.Nets) {
		t.Errorf("roundtrip: %d/%d nodes, %d/%d nets",
			len(got.Nodes), len(d.Nodes), len(got.Nets), len(d.Nets))
	}
}

func TestBaselinesViaFacade(t *testing.T) {
	d, err := GenerateIBM("ibm06", 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	orig := d.HPWL()
	for _, bl := range []struct {
		name string
		run  func() BaselineResult
	}{
		{"SE", func() BaselineResult { return BaselineSE(d, 1) }},
		{"DreamPlace", func() BaselineResult { return BaselineDreamPlace(d) }},
		{"RePlAce", func() BaselineResult { return BaselineRePlAce(d) }},
		{"MaskPlace", func() BaselineResult { return BaselineMaskPlace(d, 2) }},
	} {
		res := bl.run()
		if res.HPWL <= 0 {
			t.Errorf("%s: HPWL = %v", bl.name, res.HPWL)
		}
		// Baselines run on a clone: the input must be untouched.
		if d.HPWL() != orig {
			t.Fatalf("%s mutated the input design", bl.name)
		}
	}
}

func TestStagedFlowWithSnapshots(t *testing.T) {
	d, err := GenerateIBM("ibm01", 0.015, 8)
	if err != nil {
		t.Fatal(err)
	}
	opts := quickOpts()
	opts.RL.SnapshotEvery = 10
	p, err := NewPlacer(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Preprocess(); err != nil {
		t.Fatal(err)
	}
	tr := p.Pretrain()
	if len(tr.Snapshots) < 2 {
		t.Fatalf("snapshots = %d, want >= 2", len(tr.Snapshots))
	}
	// Fig. 5 workflow via the facade: greedy vs search per snapshot.
	for _, snap := range tr.Snapshots {
		_, rlWL := GreedyRL(p, snap.Agent)
		sres := SearchWithAgent(p, snap.Agent, opts.MCTS)
		if rlWL <= 0 || sres.Wirelength <= 0 {
			t.Fatalf("episode %d: degenerate wirelengths %v/%v", snap.Episode, rlWL, sres.Wirelength)
		}
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.Zeta != 16 || o.RL.Episodes != 120 || o.MCTS.Gamma != 24 {
		t.Errorf("DefaultOptions = %+v", o)
	}
	pa := PaperAgent(40, 1)
	if pa.Channels != 128 || pa.ResBlocks != 10 {
		t.Errorf("PaperAgent = %+v", pa)
	}
}

// TestMidScaleOrdering runs the flow and key baselines on a mid-scale
// benchmark and checks the paper's qualitative ordering: the full flow
// beats the plain mixed-size analytical baseline. Skipped with -short.
func TestMidScaleOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-scale integration test")
	}
	d, err := GenerateIBM("ibm01", 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Zeta:  16,
		Agent: AgentConfig{Zeta: 16, Channels: 16, ResBlocks: 2, Seed: 2},
		RL:    RLConfig{Episodes: 80, Seed: 3},
		// Sequential search: the 1.05×RL-only threshold below is
		// calibrated against the deterministic committed path.
		MCTS: MCTSConfig{Gamma: 24, Seed: 4, Workers: 1},
		Seed: 1,
	}
	res, err := Place(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	dp := BaselineDreamPlace(d)
	t.Logf("ours=%.4g dreamplace=%.4g rlOnly=%.4g", res.Final.HPWL, dp.HPWL, res.RLFinal.HPWL)
	// On a small instance the grid quantization gives the free
	// analytical baseline an edge; the flow must stay competitive
	// (the full-scale comparison lives in EXPERIMENTS.md).
	if res.Final.HPWL > 1.15*dp.HPWL {
		t.Errorf("flow HPWL %.4g not competitive with DREAMPlace-like %.4g", res.Final.HPWL, dp.HPWL)
	}
	// MCTS must not lose to its own greedy RL policy by more than
	// legalization noise: the flow picks the better allocation under
	// the fast oracle, and the final full placement can reorder
	// near-ties by a few percent.
	if res.Final.HPWL > 1.05*res.RLFinal.HPWL {
		t.Errorf("MCTS result %.4g worse than RL-only %.4g", res.Final.HPWL, res.RLFinal.HPWL)
	}
}

func TestLegalizeCellsOption(t *testing.T) {
	d, err := GenerateIBM("ibm01", 0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	opts := quickOpts()
	opts.LegalizeCells = true
	res, err := Place(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.LegalHPWL <= 0 {
		t.Fatal("LegalizeCells did not produce a legalized wirelength")
	}
	if res.Final.CellsFailed > 0 {
		t.Errorf("row legalizer failed on %d cells", res.Final.CellsFailed)
	}
	// Legalization perturbs the analytical placement modestly.
	if res.Final.LegalHPWL > 2*res.Final.HPWL {
		t.Errorf("legal HPWL %v vs analytical %v", res.Final.LegalHPWL, res.Final.HPWL)
	}
}

func TestQualityAndSVGFacade(t *testing.T) {
	d, err := GenerateIBM("ibm01", 0.01, 30)
	if err != nil {
		t.Fatal(err)
	}
	rep := MeasureQuality(d)
	if rep.HPWL <= 0 || rep.PeakCongestion <= 0 {
		t.Errorf("report = %+v", rep)
	}
	path := t.TempDir() + "/p.svg"
	if err := SaveSVG(path, d, SVGOptions{ShowGrid: true, Congestion: true}); err != nil {
		t.Fatalf("SaveSVG: %v", err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Error("SVG not written")
	}
}

func TestExtraBaselinesFacade(t *testing.T) {
	d, err := GenerateIBM("ibm06", 0.008, 31)
	if err != nil {
		t.Fatal(err)
	}
	for _, bl := range []struct {
		name string
		run  func() BaselineResult
	}{
		{"SA", func() BaselineResult { return BaselineSA(d, 1) }},
		{"SABTree", func() BaselineResult { return BaselineSABTree(d, 2) }},
		{"MinCut", func() BaselineResult { return BaselineMinCut(d, 3) }},
		{"CT", func() BaselineResult { return BaselineCT(d, 4) }},
	} {
		if res := bl.run(); res.HPWL <= 0 {
			t.Errorf("%s HPWL = %v", bl.name, res.HPWL)
		}
	}
}

func TestAgentCheckpointFacade(t *testing.T) {
	d, err := GenerateIBM("ibm01", 0.01, 32)
	if err != nil {
		t.Fatal(err)
	}
	opts := quickOpts()
	p, err := NewPlacer(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Preprocess(); err != nil {
		t.Fatal(err)
	}
	p.Pretrain()
	path := t.TempDir() + "/agent.ckpt"
	if err := p.Agent.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAgent(path)
	if err != nil {
		t.Fatal(err)
	}
	// A second placer reuses the checkpoint: the search must produce a
	// legal full allocation without any training.
	p2, err := NewPlacer(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Preprocess(); err != nil {
		t.Fatal(err)
	}
	p2.Agent.CopyWeightsFrom(loaded)
	res := p2.RunMCTS()
	if len(res.Anchors) != len(p2.Shapes) {
		t.Fatalf("anchors = %d, want %d", len(res.Anchors), len(p2.Shapes))
	}
}

func TestCongestionWeightOptionRuns(t *testing.T) {
	d, err := GenerateIBM("ibm03", 0.01, 33)
	if err != nil {
		t.Fatal(err)
	}
	opts := quickOpts()
	opts.CongestionWeight = 1.5
	res, err := Place(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.HPWL <= 0 {
		t.Error("congestion-aware flow produced no placement")
	}
}

func TestCommittedPathOnlyOption(t *testing.T) {
	d, err := GenerateIBM("ibm01", 0.015, 34)
	if err != nil {
		t.Fatal(err)
	}
	opts := quickOpts()
	opts.CommittedPathOnly = true
	res, err := Place(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The committed-path result must equal the search's own trace.
	if len(res.Final.Anchors) != len(res.Search.Anchors) {
		t.Fatal("anchor lengths differ")
	}
	for i := range res.Final.Anchors {
		if res.Final.Anchors[i] != res.Search.Anchors[i] {
			t.Fatal("CommittedPathOnly did not ship the committed path")
		}
	}
}
