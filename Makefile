# Developer entry points. `make check` is the merge gate (same script
# CI runs); the rest are conveniences over the go tool.

GO ?= go

.PHONY: check check-short build test race bench fmt vet

check: ## gofmt + vet + build + race-detector test suite
	scripts/check.sh

check-short: ## check, but with -short tests
	scripts/check.sh -short

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench: ## micro + table/figure benchmarks (quick preset)
	$(GO) test -bench=. -benchmem -run '^$$' .

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
