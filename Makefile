# Developer entry points. `make check` is the merge gate (same script
# CI runs); the rest are conveniences over the go tool.

GO ?= go

.PHONY: check check-short build test race bench bench-all bench-gate telemetry-smoke placed-smoke portfolio-smoke fleet-smoke eco-smoke lefdef-smoke fmt vet

check: ## gofmt + vet + build + race-detector test suite
	scripts/check.sh

check-short: ## check, but with -short tests
	scripts/check.sh -short

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench: ## search hot-path + serving + portfolio + fleet + eco + lefdef benchmarks, recorded as BENCH_pr{3,5,6,7,8,9,10}.json
	$(GO) test -run '^$$' -bench BenchmarkMCTSWorkers -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_pr3.json
	( GOMAXPROCS=1 $(GO) test -run '^$$' -bench BenchmarkMCTSWorkers -benchmem . ; \
	  GOMAXPROCS=4 $(GO) test -run '^$$' -bench BenchmarkMCTSWorkers -benchmem . ) \
		| $(GO) run ./cmd/benchjson -o BENCH_pr8.json
	$(GO) test -run '^$$' -bench BenchmarkServeThroughput -benchmem ./internal/serve \
		| $(GO) run ./cmd/benchjson -o BENCH_pr5.json
	$(GO) test -run '^$$' -bench BenchmarkPortfolioRace -benchmem ./internal/portfolio \
		| $(GO) run ./cmd/benchjson -o BENCH_pr6.json
	$(GO) test -run '^$$' -bench BenchmarkFleetThroughput -benchmem ./internal/fleet \
		| $(GO) run ./cmd/benchjson -o BENCH_pr7.json
	$(GO) test -run '^$$' -bench BenchmarkECOJob -benchmem ./internal/eco \
		| $(GO) run ./cmd/benchjson -o BENCH_pr9.json
	$(GO) test -run '^$$' -bench BenchmarkLEFDEFPlace -benchmem ./internal/lefdef \
		| $(GO) run ./cmd/benchjson -o BENCH_pr10.json

bench-all: ## micro + table/figure benchmarks (quick preset)
	$(GO) test -bench=. -benchmem -run '^$$' .

bench-gate: ## allocation-regression smoke gate (same script CI runs)
	scripts/benchgate.sh

telemetry-smoke: ## end-to-end /metrics + run-summary smoke (same script CI runs)
	scripts/telemetry_smoke.sh

placed-smoke: ## end-to-end placement-daemon smoke (same script CI runs)
	scripts/placed_smoke.sh

portfolio-smoke: ## end-to-end portfolio-race smoke, CLI + daemon (same script CI runs)
	scripts/portfolio_smoke.sh

fleet-smoke: ## end-to-end fleet smoke: SIGKILL a worker mid-job, migrate, bit-identical (same script CI runs)
	scripts/fleet_smoke.sh

eco-smoke: ## end-to-end ECO smoke: full place -> delta -> incremental re-place beats scratch, warm repeat hits cache (same script CI runs)
	scripts/eco_smoke.sh

lefdef-smoke: ## end-to-end LEF/DEF smoke: constrained place -> DEF out -> bit-identical re-read, zero violations (same script CI runs)
	scripts/lefdef_smoke.sh

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
