package macroplace_test

import (
	"fmt"

	"macroplace"
)

// ExamplePlace runs the complete flow — preprocessing, RL pre-training,
// MCTS, legalization, cell placement — on a small synthetic benchmark.
func ExamplePlace() {
	design, err := macroplace.GenerateIBM("ibm01", 0.01, 7)
	if err != nil {
		panic(err)
	}
	opts := macroplace.Options{
		Zeta:  8,
		Agent: macroplace.AgentConfig{Zeta: 8, Channels: 8, ResBlocks: 1, Seed: 1},
		RL:    macroplace.RLConfig{Episodes: 10, CalibrationEpisodes: 5, Seed: 2},
		MCTS:  macroplace.MCTSConfig{Gamma: 8, Seed: 3},
		Seed:  4,
	}
	result, err := macroplace.Place(design, opts)
	if err != nil {
		panic(err)
	}
	fmt.Println("training episodes:", len(result.History))
	fmt.Println("macro groups placed:", len(result.Final.Anchors) > 0)
	fmt.Println("placement produced:", result.Final.HPWL > 0)
	// Output:
	// training episodes: 10
	// macro groups placed: true
	// placement produced: true
}

// ExampleGenerate synthesises a custom benchmark from explicit counts.
func ExampleGenerate() {
	design := macroplace.Generate(macroplace.BenchmarkSpec{
		Name:            "demo",
		MovableMacros:   4,
		PreplacedMacros: 1,
		Pads:            8,
		Cells:           100,
		Nets:            150,
		Seed:            1,
	})
	s := design.Stats()
	fmt.Println("macros:", s.MovableMacros, "preplaced:", s.PreplacedMacro)
	fmt.Println("cells:", s.Cells, "pads:", s.Pads)
	// Output:
	// macros: 4 preplaced: 1
	// cells: 100 pads: 8
}

// ExampleMeasureQuality reports placement quality metrics.
func ExampleMeasureQuality() {
	design := macroplace.Generate(macroplace.BenchmarkSpec{
		Name: "q", MovableMacros: 3, Cells: 50, Nets: 80, Seed: 2,
	})
	report := macroplace.MeasureQuality(design)
	fmt.Println("has wirelength:", report.HPWL > 0)
	fmt.Println("macros inside region:", report.Outside == 0)
	// Output:
	// has wirelength: true
	// macros inside region: true
}
