module macroplace

go 1.22
