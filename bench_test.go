// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (Sec. VI) plus the ablations of DESIGN.md §4 and
// micro-benchmarks of the hot kernels. Experiment benches run the
// Quick preset so a full `go test -bench=.` finishes on a laptop; use
// cmd/experiments -preset standard for the EXPERIMENTS.md numbers.
package macroplace

import (
	"fmt"
	"testing"

	"macroplace/internal/agent"
	"macroplace/internal/cluster"
	"macroplace/internal/experiments"
	"macroplace/internal/gen"
	"macroplace/internal/gplace"
	"macroplace/internal/grid"
	"macroplace/internal/legalize"
	"macroplace/internal/mcts"
	"macroplace/internal/netlist"
	"macroplace/internal/rl"
	"macroplace/internal/rng"
)

func benchConfig() experiments.Config {
	c := experiments.Quick()
	c.Episodes = 20
	c.Gamma = 8
	c.IBM = []string{"ibm01"}
	c.Cir = []string{"cir1"}
	return c
}

// ---------------------------------------------------------------------------
// Paper experiments

// BenchmarkFigure4RewardShaping regenerates the Fig. 4 reward-function
// convergence study.
func BenchmarkFigure4RewardShaping(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5AnytimeMCTS regenerates the Fig. 5 MCTS-vs-RL-stage
// study.
func BenchmarkFigure5AnytimeMCTS(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(cfg, []string{"ibm01"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII regenerates the industrial comparison (SE /
// DREAMPlace-like / ours).
func BenchmarkTableII(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII regenerates the ICCAD04 comparison (CT / MaskPlace
// / RePlAce-like / ours).
func BenchmarkTableIII(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIII(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIV regenerates the MCTS-runtime table.
func BenchmarkTableIV(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIV(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md §4)

// BenchmarkAblationGrouping measures grouped vs per-macro episodes.
func BenchmarkAblationGrouping(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGrouping(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRollout measures value-net vs rollout evaluation.
func BenchmarkAblationRollout(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRollout(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPUCT sweeps the PUCT constant.
func BenchmarkAblationPUCT(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPUCT(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOrder compares area-sorted vs shuffled order.
func BenchmarkAblationOrder(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationOrder(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the hot kernels

func benchDesign(b *testing.B, scale float64) *netlist.Design {
	b.Helper()
	d, err := gen.IBM("ibm01", scale, 99)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkHPWL measures full-netlist wirelength evaluation.
func BenchmarkHPWL(b *testing.B) {
	d := benchDesign(b, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.HPWL()
	}
}

// BenchmarkQuadraticSolve measures one full global placement.
func BenchmarkQuadraticSolve(b *testing.B) {
	d := benchDesign(b, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := d.Clone()
		gplace.Place(work, gplace.Config{Mode: gplace.MoveAll, Iterations: 4})
	}
}

// BenchmarkClusterMacros measures the Eq. (1)/(2) clustering stage.
func BenchmarkClusterMacros(b *testing.B) {
	d := benchDesign(b, 0.05)
	gplace.InitialPlacement(d)
	params := cluster.DefaultParams(d.Region.Area() / 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cluster.Build(d, params)
	}
}

// BenchmarkPolicyForward measures one agent inference at the default
// experiment tower size (ζ=16).
func BenchmarkPolicyForward(b *testing.B) {
	ag := agent.New(agent.Config{Zeta: 16, Channels: 16, ResBlocks: 2, MaxSteps: 64, Seed: 1})
	r := rng.New(2)
	sp := make([]float64, 256)
	sa := make([]float64, 256)
	for i := range sp {
		sp[i] = r.Float64()
		sa[i] = r.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ag.Forward(sp, sa, i%32)
	}
}

// BenchmarkPolicyForwardPaperSize measures inference at the exact
// Table I shape (128 channels, 10 ResBlocks).
func BenchmarkPolicyForwardPaperSize(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-sized tower")
	}
	ag := agent.New(agent.Paper(64, 1))
	r := rng.New(3)
	sp := make([]float64, 256)
	sa := make([]float64, 256)
	for i := range sp {
		sp[i] = r.Float64()
		sa[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ag.Forward(sp, sa, i%32)
	}
}

// BenchmarkAgentBackward measures one training step (forward+backward).
func BenchmarkAgentBackward(b *testing.B) {
	ag := agent.New(agent.Config{Zeta: 16, Channels: 16, ResBlocks: 2, MaxSteps: 64, Seed: 4})
	r := rng.New(5)
	sp := make([]float64, 256)
	sa := make([]float64, 256)
	for i := range sp {
		sp[i] = r.Float64()
		sa[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ag.Forward(sp, sa, i%32)
		ag.Backward(i%256, 0.5, 1, 0)
	}
}

// BenchmarkMCTSExploration measures the per-exploration cost of the
// search (selection + expansion + value evaluation + backprop).
func BenchmarkMCTSExploration(b *testing.B) {
	g := grid.New(benchDesign(b, 0.02).Region, 8)
	shape := grid.Shape{GW: 1, GH: 1, Util: []float64{0.5}, W: g.CellW, H: g.CellH, Area: g.CellArea() / 2}
	shapes := make([]grid.Shape, 12)
	for i := range shapes {
		shapes[i] = shape
	}
	env := grid.NewEnv(g, shapes, nil)
	ag := agent.New(agent.Config{Zeta: 8, Channels: 8, ResBlocks: 1, MaxSteps: 16, Seed: 6})
	wl := func(anchors []int) float64 {
		var t float64
		for _, a := range anchors {
			gx, gy := g.Coords(a)
			t += float64(gx + gy)
		}
		return t
	}
	scaler := rl.Calibrate(rl.Shaped, []float64{0, 50, 100}, 0.75)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := mcts.New(mcts.Config{Gamma: 8, Seed: int64(i), Workers: 1}, ag, wl, scaler)
		_ = s.Run(env)
	}
	// Each Run is Gamma × steps explorations.
	b.ReportMetric(float64(8*12), "explorations/op")
}

// BenchmarkMCTSWorkers measures the tree-parallel search speedup on a
// medium synthetic design sized so the neural evaluation dominates
// (ζ=16 maps through a 24-channel, 3-block tower — the regime the
// paper's full-scale runs live in). Compare the Workers=1 and
// Workers=4 rows: the virtual-loss workers plus the evaluation
// batcher should cut wall-clock time at identical exploration budgets.
//
// The search is routed through a shared evaluation cache and a warm-up
// run primes the env pool, node arenas, and inference scratch before
// the timer starts, so the reported allocs/op is the steady-state
// figure scripts/benchgate.sh gates on, and cachehit/ratio shows the
// fraction of evaluations served from the cache.
func BenchmarkMCTSWorkers(b *testing.B) {
	g := grid.New(benchDesign(b, 0.02).Region, 16)
	shape := grid.Shape{GW: 2, GH: 2, Util: []float64{0.2, 0.2, 0.2, 0.2},
		W: 2 * g.CellW, H: 2 * g.CellH, Area: 0.8 * g.CellArea()}
	shapes := make([]grid.Shape, 20)
	for i := range shapes {
		shapes[i] = shape
	}
	env := grid.NewEnv(g, shapes, nil)
	ag := agent.New(agent.Config{Zeta: 16, Channels: 24, ResBlocks: 3, MaxSteps: 24, Seed: 9})
	ce := agent.NewCachedEvaluator(ag, 1<<14)
	wl := func(anchors []int) float64 {
		var t float64
		for _, a := range anchors {
			gx, gy := g.Coords(a)
			t += float64(gx + gy)
		}
		return t
	}
	scaler := rl.Calibrate(rl.Shaped, []float64{0, 300, 600}, 0.75)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			_ = mcts.New(mcts.Config{Gamma: 16, Seed: 0, Workers: workers}, ce, wl, scaler).Run(env)
			h0, m0 := ce.Stats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := mcts.New(mcts.Config{Gamma: 16, Seed: int64(i + 1), Workers: workers}, ce, wl, scaler)
				_ = s.Run(env)
			}
			b.StopTimer()
			h1, m1 := ce.Stats()
			b.ReportMetric(float64(16*20), "explorations/op")
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(16*20)*float64(b.N)/sec, "sims/sec")
			}
			if tot := float64((h1 - h0) + (m1 - m0)); tot > 0 {
				b.ReportMetric(float64(h1-h0)/tot, "cachehit/ratio")
			}
		})
	}
}

// BenchmarkLegalizeGrid measures sequence-pair legalization of a
// block of overlapping macros.
func BenchmarkLegalizeGrid(b *testing.B) {
	r := rng.New(7)
	mk := func() []legalize.Item {
		items := make([]legalize.Item, 8)
		for i := range items {
			w, h := r.Range(2, 5), r.Range(2, 5)
			x, y := r.Range(0, 20), r.Range(0, 20)
			items[i] = legalize.Item{W: w, H: h, X: x, Y: y, TX: x + w/2, TY: y + h/2, Weight: 1}
		}
		return items
	}
	bounds := benchDesign(b, 0.02).Region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items := mk()
		legalize.RemoveOverlaps(items, bounds, 24)
	}
}

// BenchmarkCoarseOracle measures the per-episode reward evaluation
// (the dominant cost of RL training).
func BenchmarkCoarseOracle(b *testing.B) {
	d := benchDesign(b, 0.05)
	p, err := newCorePlacer(d)
	if err != nil {
		b.Fatal(err)
	}
	env := p.Env.Clone()
	r := rng.New(8)
	anchors := rl.RandomEpisode(env, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.EvalAnchors(anchors)
	}
}

// BenchmarkGenerateIBM measures benchmark synthesis.
func BenchmarkGenerateIBM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gen.IBM("ibm01", 0.05, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// newCorePlacer builds a preprocessed pipeline for oracle benches.
func newCorePlacer(d *Design) (*Placer, error) {
	p, err := NewPlacer(d, Options{
		Zeta:  8,
		Agent: AgentConfig{Zeta: 8, Channels: 8, ResBlocks: 1, Seed: 1},
	})
	if err != nil {
		return nil, err
	}
	if err := p.Preprocess(); err != nil {
		return nil, err
	}
	return p, nil
}
